/**
 * @file
 * Unit tests for the digital HAM.
 */

#include <gtest/gtest.h>

#include "core/assoc_memory.hh"
#include "core/random.hh"
#include "ham/d_ham.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;
using hdham::ham::DHam;
using hdham::ham::DHamConfig;

TEST(DHamTest, ValidatesConfig)
{
    DHamConfig bad;
    bad.dim = 0;
    EXPECT_THROW(DHam{bad}, std::invalid_argument);

    bad.dim = 100;
    bad.sampledDim = 200;
    EXPECT_THROW(DHam{bad}, std::invalid_argument);
}

TEST(DHamTest, StoreRejectsWrongDimension)
{
    DHamConfig cfg;
    cfg.dim = 128;
    DHam ham(cfg);
    Rng rng(1);
    EXPECT_THROW(ham.store(Hypervector::random(64, rng)),
                 std::invalid_argument);
}

TEST(DHamTest, SearchWithoutContentsThrows)
{
    DHamConfig cfg;
    cfg.dim = 128;
    DHam ham(cfg);
    Rng rng(2);
    EXPECT_THROW(ham.search(Hypervector::random(128, rng)),
                 std::logic_error);
}

TEST(DHamTest, NameAndSizes)
{
    DHamConfig cfg;
    cfg.dim = 256;
    DHam ham(cfg);
    Rng rng(3);
    ham.store(Hypervector::random(256, rng));
    EXPECT_EQ(ham.name(), "D-HAM");
    EXPECT_EQ(ham.dim(), 256u);
    EXPECT_EQ(ham.size(), 1u);
}

class DHamExactnessTest
    : public ::testing::TestWithParam<std::pair<std::size_t,
                                                std::size_t>>
{
};

TEST_P(DHamExactnessTest, MatchesSoftwareOracleExactly)
{
    const auto [dim, classes] = GetParam();
    Rng rng(dim + classes);
    AssociativeMemory oracle(dim);
    DHamConfig cfg;
    cfg.dim = dim;
    DHam ham(cfg);
    for (std::size_t c = 0; c < classes; ++c)
        oracle.store(Hypervector::random(dim, rng));
    ham.loadFrom(oracle);
    ASSERT_EQ(ham.size(), classes);

    for (int q = 0; q < 50; ++q) {
        const Hypervector query = Hypervector::random(dim, rng);
        const auto expect = oracle.search(query);
        const auto got = ham.search(query);
        EXPECT_EQ(got.classId, expect.classId);
        EXPECT_EQ(got.reportedDistance, expect.bestDistance);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DHamExactnessTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{64, 2},
                      std::pair<std::size_t, std::size_t>{100, 6},
                      std::pair<std::size_t, std::size_t>{512, 21},
                      std::pair<std::size_t, std::size_t>{1000, 33},
                      std::pair<std::size_t, std::size_t>{10000,
                                                          100}));

TEST(DHamTest, SampledSearchMatchesOraclePrefix)
{
    const std::size_t dim = 1000;
    Rng rng(4);
    AssociativeMemory oracle(dim);
    DHamConfig cfg;
    cfg.dim = dim;
    cfg.sampledDim = 700;
    DHam ham(cfg);
    for (int c = 0; c < 10; ++c)
        oracle.store(Hypervector::random(dim, rng));
    ham.loadFrom(oracle);
    for (int q = 0; q < 50; ++q) {
        const Hypervector query = Hypervector::random(dim, rng);
        EXPECT_EQ(ham.search(query).classId,
                  oracle.searchSampled(query, 700).classId);
    }
}

TEST(DHamTest, SamplingKeepsNearestNeighborWhenMarginsAreWide)
{
    // Stored rows ~D/2 apart; queries 50 bits from one row. Even at
    // d = 7,000 of 10,000 the margin dwarfs the sampling noise.
    const std::size_t dim = 10000;
    Rng rng(5);
    std::vector<Hypervector> rows;
    DHamConfig cfg;
    cfg.dim = dim;
    cfg.sampledDim = 7000;
    DHam ham(cfg);
    for (int c = 0; c < 21; ++c) {
        rows.push_back(Hypervector::random(dim, rng));
        ham.store(rows.back());
    }
    for (int q = 0; q < 100; ++q) {
        const std::size_t target = rng.nextBelow(21);
        Hypervector query = rows[target];
        query.injectErrors(50, rng);
        EXPECT_EQ(ham.search(query).classId, target);
    }
}

TEST(DHamTest, ReportedDistanceScalesWithSampling)
{
    const std::size_t dim = 10000;
    Rng rng(6);
    const Hypervector row = Hypervector::random(dim, rng);
    DHamConfig full, half;
    full.dim = dim;
    half.dim = dim;
    half.sampledDim = 5000;
    DHam fullHam(full), halfHam(half);
    fullHam.store(row);
    halfHam.store(row);
    const Hypervector query = Hypervector::random(dim, rng);
    const double fullDist = static_cast<double>(
        fullHam.search(query).reportedDistance);
    const double halfDist = static_cast<double>(
        halfHam.search(query).reportedDistance);
    EXPECT_NEAR(2.0 * halfDist, fullDist, 0.1 * fullDist);
}

TEST(DHamTest, DefaultSampledDimIsFullDim)
{
    DHamConfig cfg;
    cfg.dim = 4096;
    EXPECT_EQ(cfg.effectiveDim(), 4096u);
    cfg.sampledDim = 1024;
    EXPECT_EQ(cfg.effectiveDim(), 1024u);
}

} // namespace

/**
 * @file
 * Unit tests for the design-space navigation API.
 */

#include <gtest/gtest.h>

#include "ham/design_space.hh"

namespace
{

using hdham::ham::AccuracyTarget;
using hdham::ham::bestByEdp;
using hdham::ham::Design;
using hdham::ham::designName;
using hdham::ham::designPoint;
using hdham::ham::fullDesignSpace;
using hdham::ham::targetName;

TEST(DesignSpaceTest, Names)
{
    EXPECT_STREQ(designName(Design::DHam), "D-HAM");
    EXPECT_STREQ(designName(Design::RHam), "R-HAM");
    EXPECT_STREQ(designName(Design::AHam), "A-HAM");
    EXPECT_STREQ(targetName(AccuracyTarget::Exact), "exact");
    EXPECT_STREQ(targetName(AccuracyTarget::Maximum), "maximum");
    EXPECT_STREQ(targetName(AccuracyTarget::Moderate), "moderate");
}

TEST(DesignSpaceTest, PaperKnobsAtTenThousand)
{
    const auto dMax =
        designPoint(Design::DHam, AccuracyTarget::Maximum);
    EXPECT_EQ(dMax.sampledDim, 9000u);
    EXPECT_EQ(dMax.errorBudgetBits, 1000u);
    const auto dMod =
        designPoint(Design::DHam, AccuracyTarget::Moderate);
    EXPECT_EQ(dMod.sampledDim, 7000u);

    const auto rMax =
        designPoint(Design::RHam, AccuracyTarget::Maximum);
    EXPECT_EQ(rMax.overscaledBlocks, 1000u); // 40% of 2,500
    const auto rMod =
        designPoint(Design::RHam, AccuracyTarget::Moderate);
    EXPECT_EQ(rMod.overscaledBlocks, 2500u); // all blocks

    const auto aMax =
        designPoint(Design::AHam, AccuracyTarget::Maximum);
    EXPECT_EQ(aMax.ltaBits, 14u);
    EXPECT_EQ(aMax.stages, 14u);
    const auto aMod =
        designPoint(Design::AHam, AccuracyTarget::Moderate);
    EXPECT_EQ(aMod.ltaBits, 11u);
}

TEST(DesignSpaceTest, MoreApproximationIsNeverMoreExpensive)
{
    for (const Design design :
         {Design::DHam, Design::RHam, Design::AHam}) {
        const double exact =
            designPoint(design, AccuracyTarget::Exact).cost.edp();
        const double maximum =
            designPoint(design, AccuracyTarget::Maximum).cost.edp();
        const double moderate =
            designPoint(design, AccuracyTarget::Moderate).cost.edp();
        EXPECT_LE(maximum, exact) << designName(design);
        EXPECT_LE(moderate, maximum) << designName(design);
    }
}

TEST(DesignSpaceTest, AhamAlwaysWinsByEdp)
{
    // The paper's conclusion holds across targets and shapes.
    for (const AccuracyTarget target :
         {AccuracyTarget::Exact, AccuracyTarget::Maximum,
          AccuracyTarget::Moderate}) {
        for (const std::size_t classes : {6u, 21u, 100u}) {
            EXPECT_EQ(bestByEdp(target, 10000, classes).design,
                      Design::AHam);
        }
    }
}

TEST(DesignSpaceTest, FullSpaceEnumeratesNinePoints)
{
    const auto points = fullDesignSpace();
    EXPECT_EQ(points.size(), 9u);
    for (const auto &point : points) {
        EXPECT_GT(point.cost.energyPj, 0.0);
        EXPECT_GT(point.cost.delayNs, 0.0);
        EXPECT_FALSE(point.description.empty());
    }
}

TEST(DesignSpaceTest, GeneralizesAcrossDimensions)
{
    const auto point =
        designPoint(Design::DHam, AccuracyTarget::Moderate, 2000, 8);
    EXPECT_EQ(point.sampledDim, 1400u); // 70% of 2,000
    EXPECT_EQ(point.errorBudgetBits, 600u);

    const auto aham =
        designPoint(Design::AHam, AccuracyTarget::Maximum, 512, 8);
    EXPECT_EQ(aham.stages, 1u);
    EXPECT_EQ(aham.ltaBits, 10u);
}

TEST(DesignSpaceTest, EdpGainsMatchFig11)
{
    const double dMax =
        designPoint(Design::DHam, AccuracyTarget::Maximum)
            .cost.edp();
    const double aMax =
        designPoint(Design::AHam, AccuracyTarget::Maximum)
            .cost.edp();
    EXPECT_NEAR(dMax / aMax, 746.0, 75.0);
}

} // namespace

/**
 * @file
 * Unit tests for D-HAM's structural digital blocks (Fig. 2).
 */

#include <gtest/gtest.h>

#include "core/random.hh"
#include "ham/digital_blocks.hh"

namespace
{

using hdham::Hypervector;
using hdham::Rng;
using hdham::ham::BinaryCounter;
using hdham::ham::ComparatorTree;

TEST(BinaryCounterTest, WidthIsLogOfDimension)
{
    // The paper: "C counters each with log D bits".
    EXPECT_EQ(BinaryCounter(10000).width(), 14u);
    EXPECT_EQ(BinaryCounter(1024).width(), 11u);
    EXPECT_EQ(BinaryCounter(1023).width(), 10u);
    EXPECT_EQ(BinaryCounter(1).width(), 1u);
}

TEST(BinaryCounterTest, RejectsZeroDimension)
{
    EXPECT_THROW(BinaryCounter(0), std::invalid_argument);
}

TEST(BinaryCounterTest, CountsSerialMismatches)
{
    BinaryCounter counter(8);
    counter.shiftIn(true);
    counter.shiftIn(false);
    counter.shiftIn(true);
    EXPECT_EQ(counter.value(), 2u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(BinaryCounterTest, AccumulateMatchesHamming)
{
    Rng rng(1);
    const Hypervector a = Hypervector::random(500, rng);
    const Hypervector b = Hypervector::random(500, rng);
    BinaryCounter counter(500);
    const std::size_t cycles = counter.accumulate(a, b, 500);
    EXPECT_EQ(cycles, 500u);
    EXPECT_EQ(counter.value(), a.hamming(b));
}

TEST(BinaryCounterTest, AccumulatePrefixMatchesSampledDistance)
{
    Rng rng(2);
    const Hypervector a = Hypervector::random(500, rng);
    const Hypervector b = Hypervector::random(500, rng);
    BinaryCounter counter(500);
    counter.accumulate(a, b, 200);
    EXPECT_EQ(counter.value(), a.hammingPrefix(b, 200));
}

TEST(ComparatorTreeTest, RejectsEmptyInput)
{
    EXPECT_THROW(ComparatorTree::reduce({}), std::invalid_argument);
}

TEST(ComparatorTreeTest, FindsMinimum)
{
    const auto result = ComparatorTree::reduce({9, 4, 7, 2, 8});
    EXPECT_EQ(result.index, 3u);
    EXPECT_EQ(result.value, 2u);
}

TEST(ComparatorTreeTest, TiesGoToLowerIndex)
{
    const auto result = ComparatorTree::reduce({5, 3, 3, 3});
    EXPECT_EQ(result.index, 1u);
}

TEST(ComparatorTreeTest, UsesExactlyCMinusOneComparisons)
{
    // The paper's comparator budget: C - 1 two-input comparators.
    for (std::size_t c : {2u, 3u, 5u, 21u, 100u}) {
        std::vector<std::uint64_t> values(c, 7);
        values[c / 2] = 1;
        const auto result = ComparatorTree::reduce(values);
        EXPECT_EQ(result.comparisons, c - 1) << "C=" << c;
        EXPECT_EQ(result.index, c / 2);
    }
}

TEST(ComparatorTreeTest, HeightIsCeilLogC)
{
    EXPECT_EQ(ComparatorTree::heightFor(1), 0u);
    EXPECT_EQ(ComparatorTree::heightFor(2), 1u);
    EXPECT_EQ(ComparatorTree::heightFor(21), 5u);
    EXPECT_EQ(ComparatorTree::heightFor(100), 7u);
    const auto result =
        ComparatorTree::reduce(std::vector<std::uint64_t>(21, 3));
    EXPECT_EQ(result.height, 5u);
}

TEST(ComparatorTreeTest, SingleInput)
{
    const auto result = ComparatorTree::reduce({42});
    EXPECT_EQ(result.index, 0u);
    EXPECT_EQ(result.value, 42u);
    EXPECT_EQ(result.comparisons, 0u);
    EXPECT_EQ(result.height, 0u);
}

TEST(ComparatorTreeTest, AgreesWithStdMinElement)
{
    Rng rng(3);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 1 + rng.nextBelow(64);
        std::vector<std::uint64_t> values(n);
        for (auto &v : values)
            v = rng.nextBelow(1000);
        const auto result = ComparatorTree::reduce(values);
        const auto expect =
            std::min_element(values.begin(), values.end());
        EXPECT_EQ(result.value, *expect);
        EXPECT_EQ(result.index, static_cast<std::size_t>(
                                    expect - values.begin()));
    }
}

TEST(StructuralDhamTest, FullPipelineMatchesArithmetic)
{
    // Counter bank + comparator tree = D-HAM search, structurally.
    Rng rng(4);
    const std::size_t dim = 1000, classes = 21;
    std::vector<Hypervector> rows;
    for (std::size_t c = 0; c < classes; ++c)
        rows.push_back(Hypervector::random(dim, rng));
    const Hypervector query = Hypervector::random(dim, rng);

    std::vector<std::uint64_t> counts;
    for (const auto &row : rows) {
        BinaryCounter counter(dim);
        counter.accumulate(row, query, dim);
        counts.push_back(counter.value());
    }
    const auto winner = ComparatorTree::reduce(counts);

    std::size_t expectBest = 0;
    for (std::size_t c = 1; c < classes; ++c)
        if (rows[c].hamming(query) < rows[expectBest].hamming(query))
            expectBest = c;
    EXPECT_EQ(winner.index, expectBest);
    EXPECT_EQ(winner.value, rows[expectBest].hamming(query));
}

} // namespace

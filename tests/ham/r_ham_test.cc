/**
 * @file
 * Unit tests for the resistive HAM.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/assoc_memory.hh"
#include "core/random.hh"
#include "ham/r_ham.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;
using hdham::ham::RHam;
using hdham::ham::RHamConfig;

TEST(RHamTest, ValidatesConfig)
{
    RHamConfig bad;
    bad.dim = 0;
    EXPECT_THROW(RHam{bad}, std::invalid_argument);

    bad = RHamConfig{};
    bad.blockBits = 3; // does not divide 64
    EXPECT_THROW(RHam{bad}, std::invalid_argument);

    bad = RHamConfig{};
    bad.dim = 100;
    bad.blocksOff = 26; // only 25 blocks exist
    EXPECT_THROW(RHam{bad}, std::invalid_argument);

    bad = RHamConfig{};
    bad.dim = 100;
    bad.blocksOff = 10;
    bad.overscaledBlocks = 16; // only 15 active remain
    EXPECT_THROW(RHam{bad}, std::invalid_argument);
}

TEST(RHamTest, BlockBookkeeping)
{
    RHamConfig cfg;
    cfg.dim = 10000;
    cfg.blockBits = 4;
    EXPECT_EQ(cfg.totalBlocks(), 2500u);
    cfg.blocksOff = 250;
    EXPECT_EQ(cfg.activeBlocks(), 2250u);
}

TEST(RHamTest, WorstCaseErrorAccounting)
{
    RHamConfig cfg;
    cfg.dim = 10000;
    cfg.blocksOff = 250;
    cfg.overscaledBlocks = 1000;
    RHam ham(cfg);
    // 250 * 4 bits sampled away + 1,000 overscaled blocks at <= 1
    // bit each: the paper's error budget arithmetic.
    EXPECT_EQ(ham.worstCaseDistanceError(), 2000u);
}

TEST(RHamTest, NominalSearchMatchesOracleOnSeparatedRows)
{
    // Queries near a stored row (margin ~D/2 - noise): nominal
    // R-HAM sensing must agree with the oracle. Random queries are
    // deliberately avoided: they can land in exact distance ties,
    // which hardware may legitimately break differently.
    const std::size_t dim = 4096;
    Rng rng(1);
    AssociativeMemory oracle(dim);
    RHamConfig cfg;
    cfg.dim = dim;
    RHam ham(cfg);
    for (int c = 0; c < 21; ++c)
        oracle.store(Hypervector::random(dim, rng));
    ham.loadFrom(oracle);
    for (int q = 0; q < 100; ++q) {
        Hypervector query =
            oracle.vectorOf(rng.nextBelow(21));
        query.injectErrors(600, rng);
        EXPECT_EQ(ham.search(query).classId,
                  oracle.search(query).classId);
    }
}

TEST(RHamTest, NominalSensedDistanceIsNearlyExact)
{
    const std::size_t dim = 10000;
    Rng rng(2);
    RHamConfig cfg;
    cfg.dim = dim;
    RHam ham(cfg);
    const Hypervector row = Hypervector::random(dim, rng);
    ham.store(row);
    for (int q = 0; q < 20; ++q) {
        Hypervector query = row;
        query.injectErrors(500, rng);
        const auto result = ham.search(query);
        // Nominal sensing error is ~5e-4 per block: a few bits over
        // 2,500 blocks.
        EXPECT_NEAR(static_cast<double>(result.reportedDistance),
                    500.0, 25.0);
    }
}

TEST(RHamTest, OverscaledSensedDistanceStaysNearTruth)
{
    const std::size_t dim = 10000;
    Rng rng(3);
    RHamConfig cfg;
    cfg.dim = dim;
    cfg.overscaledBlocks = 2500;
    RHam ham(cfg);
    const Hypervector row = Hypervector::random(dim, rng);
    ham.store(row);
    double worstErr = 0.0;
    for (int q = 0; q < 20; ++q) {
        Hypervector query = row;
        query.injectErrors(2000, rng);
        const auto result = ham.search(query);
        const double err = std::abs(
            static_cast<double>(result.reportedDistance) - 2000.0);
        worstErr = std::max(worstErr, err);
        // Distributed +-1-per-block errors largely cancel; the
        // residual must stay far below the worst-case budget.
        EXPECT_LT(err, cfg.totalBlocks() * 0.2);
    }
    // But overscaling is not error-free either.
    EXPECT_GT(worstErr, 0.0);
}

TEST(RHamTest, OverscalingAddsNoise)
{
    const std::size_t dim = 10000;
    Rng rng(4);
    const Hypervector row = Hypervector::random(dim, rng);
    Hypervector query = row;
    query.injectErrors(1000, rng);

    const auto spread = [&](std::size_t overscaled) {
        RHamConfig cfg;
        cfg.dim = dim;
        cfg.overscaledBlocks = overscaled;
        RHam ham(cfg);
        ham.store(row);
        double sq = 0.0;
        const int n = 40;
        for (int i = 0; i < n; ++i) {
            const double d = static_cast<double>(
                ham.search(query).reportedDistance);
            sq += (d - 1000.0) * (d - 1000.0);
        }
        return std::sqrt(sq / n);
    };
    EXPECT_GT(spread(2500), 2.0 * spread(0));
}

TEST(RHamTest, SamplingScalesReportedDistance)
{
    const std::size_t dim = 10000;
    Rng rng(5);
    const Hypervector row = Hypervector::random(dim, rng);
    const Hypervector query = Hypervector::random(dim, rng);
    RHamConfig full, sampled;
    full.dim = dim;
    sampled.dim = dim;
    sampled.blocksOff = 1250; // half the blocks
    RHam fullHam(full), sampledHam(sampled);
    fullHam.store(row);
    sampledHam.store(row);
    const double fullDist = static_cast<double>(
        fullHam.search(query).reportedDistance);
    const double halfDist = static_cast<double>(
        sampledHam.search(query).reportedDistance);
    EXPECT_NEAR(2.0 * halfDist, fullDist, 0.1 * fullDist);
}

TEST(RHamTest, SampledSearchIgnoresTailBlocks)
{
    // Rows that differ from the query only in the powered-off tail
    // must be sensed at distance zero.
    RHamConfig cfg;
    cfg.dim = 64;
    cfg.blockBits = 4;
    cfg.blocksOff = 8; // keep blocks 0..7 = bits 0..31
    RHam ham(cfg);
    Hypervector row(64);
    for (std::size_t i = 32; i < 64; ++i)
        row.set(i, true);
    ham.store(row);
    const Hypervector query(64);
    const auto result = ham.search(query);
    EXPECT_EQ(result.reportedDistance, 0u);
}

class RHamBlockWidthTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RHamBlockWidthTest, ExactForKnownBlockPattern)
{
    // Construct a row/query pair with one mismatch in every block
    // and check the sensed distance equals the block count at
    // nominal voltage.
    const std::size_t width = GetParam();
    RHamConfig cfg;
    cfg.dim = 64;
    cfg.blockBits = width;
    RHam ham(cfg);
    Hypervector row(64);
    ham.store(row);
    Hypervector query(64);
    const std::size_t blocks = 64 / width;
    for (std::size_t b = 0; b < blocks; ++b)
        query.set(b * width, true);
    const auto result = ham.search(query);
    EXPECT_EQ(result.reportedDistance, blocks);
}

INSTANTIATE_TEST_SUITE_P(Widths, RHamBlockWidthTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(RHamTest, ClassificationSurvivesFullOverscaling)
{
    // The headline robustness claim: with every block overscaled the
    // nearest neighbor of well-separated rows still wins.
    const std::size_t dim = 10000;
    Rng rng(6);
    RHamConfig cfg;
    cfg.dim = dim;
    cfg.overscaledBlocks = 2500;
    RHam ham(cfg);
    std::vector<Hypervector> rows;
    for (int c = 0; c < 21; ++c) {
        rows.push_back(Hypervector::random(dim, rng));
        ham.store(rows.back());
    }
    int correct = 0;
    const int trials = 100;
    for (int q = 0; q < trials; ++q) {
        const std::size_t target = rng.nextBelow(21);
        Hypervector query = rows[target];
        query.injectErrors(1500, rng);
        correct += ham.search(query).classId == target;
    }
    EXPECT_EQ(correct, trials);
}

} // namespace

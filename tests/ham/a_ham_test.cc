/**
 * @file
 * Unit tests for the analog HAM.
 */

#include <gtest/gtest.h>

#include "core/assoc_memory.hh"
#include "core/random.hh"
#include "ham/a_ham.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;
using hdham::circuit::VariationParams;
using hdham::ham::AHam;
using hdham::ham::AHamConfig;

TEST(AHamTest, ValidatesConfig)
{
    AHamConfig bad;
    bad.dim = 0;
    EXPECT_THROW(AHam{bad}, std::invalid_argument);

    bad = AHamConfig{};
    bad.dim = 8;
    bad.stages = 16;
    EXPECT_THROW(AHam{bad}, std::invalid_argument);

    bad = AHamConfig{};
    bad.ltaBits = 40;
    EXPECT_THROW(AHam{bad}, std::invalid_argument);
}

TEST(AHamTest, DefaultsFollowThePaperSchedule)
{
    AHamConfig cfg;
    cfg.dim = 10000;
    EXPECT_EQ(cfg.effectiveStages(), 14u);
    EXPECT_EQ(cfg.effectiveBits(), 14u);
    cfg.dim = 256;
    EXPECT_EQ(cfg.effectiveStages(), 1u);
    EXPECT_EQ(cfg.effectiveBits(), 10u);
}

TEST(AHamTest, MinDetectableDistanceAnchors)
{
    AHamConfig cfg;
    cfg.dim = 10000;
    AHam ham(cfg);
    EXPECT_EQ(ham.minDetectableDistance(), 14u);

    AHamConfig small;
    small.dim = 256;
    AHam smallHam(small);
    EXPECT_EQ(smallHam.minDetectableDistance(), 1u);
}

TEST(AHamTest, VariationInflatesMinDetectableDistance)
{
    AHamConfig nominal;
    nominal.dim = 10000;
    AHamConfig stressed = nominal;
    stressed.variation = VariationParams{0.35, 0.10};
    AHam a(nominal), b(stressed);
    EXPECT_GT(b.minDetectableDistance(),
              10 * a.minDetectableDistance());
}

TEST(AHamTest, NoiseFreeConfigMatchesOracle)
{
    const std::size_t dim = 2048;
    Rng rng(1);
    AssociativeMemory oracle(dim);
    AHamConfig cfg;
    cfg.dim = dim;
    cfg.stages = 1;
    cfg.ltaBits = 30;      // quantization far below 1 distance unit
    cfg.mirrorBeta = 0.0;  // no mirror noise
    cfg.current.stabilizerSlope = 0.0; // ideal ML stabilizer
    cfg.variation = VariationParams{1e-3, 0.0}; // ~zero offset
    AHam ham(cfg);
    for (int c = 0; c < 21; ++c)
        oracle.store(Hypervector::random(dim, rng));
    ham.loadFrom(oracle);
    for (int q = 0; q < 100; ++q) {
        // Near-row queries: random ones can produce exact distance
        // ties, which the tree and the oracle break differently.
        Hypervector query = oracle.vectorOf(rng.nextBelow(21));
        query.injectErrors(300, rng);
        EXPECT_EQ(ham.search(query).classId,
                  oracle.search(query).classId);
    }
}

TEST(AHamTest, DesignPointClassifiesSeparatedRows)
{
    const std::size_t dim = 10000;
    Rng rng(2);
    AHamConfig cfg;
    cfg.dim = dim;
    AHam ham(cfg);
    std::vector<Hypervector> rows;
    for (int c = 0; c < 21; ++c) {
        rows.push_back(Hypervector::random(dim, rng));
        ham.store(rows.back());
    }
    int correct = 0;
    const int trials = 200;
    for (int q = 0; q < trials; ++q) {
        const std::size_t target = rng.nextBelow(21);
        Hypervector query = rows[target];
        query.injectErrors(1000, rng);
        correct += ham.search(query).classId == target;
    }
    // Margins (~4,000 bits) dwarf minDet = 14: essentially exact.
    EXPECT_GE(correct, trials - 1);
}

TEST(AHamTest, SubMinDetGapsAreAmbiguous)
{
    // Two rows whose distances to the query differ by far less than
    // the minimum detectable distance: the winner should flip
    // between searches.
    const std::size_t dim = 10000;
    Rng rng(3);
    AHamConfig cfg;
    cfg.dim = dim;
    cfg.ltaBits = 8; // coarse: minDet >> 2
    AHam ham(cfg);
    const Hypervector base = Hypervector::random(dim, rng);
    Hypervector near = base;
    near.injectErrors(500, rng);
    Hypervector nearer = base;
    nearer.injectErrors(498, rng);
    ham.store(near);
    ham.store(nearer);
    int firstWins = 0;
    const int trials = 400;
    for (int i = 0; i < trials; ++i)
        firstWins += ham.search(base).classId == 0;
    EXPECT_GT(firstWins, trials / 10);
    EXPECT_LT(firstWins, trials - trials / 10);
}

TEST(AHamTest, GapsAboveMinDetAreResolved)
{
    const std::size_t dim = 10000;
    Rng rng(4);
    AHamConfig cfg;
    cfg.dim = dim;
    AHam ham(cfg);
    const std::size_t md = ham.minDetectableDistance();
    const Hypervector base = Hypervector::random(dim, rng);
    Hypervector winner = base;
    winner.injectErrors(500, rng);
    Hypervector loser = base;
    loser.injectErrors(500 + 5 * md, rng);
    ham.store(loser);
    ham.store(winner);
    int wins = 0;
    const int trials = 300;
    for (int i = 0; i < trials; ++i)
        wins += ham.search(base).classId == 1;
    EXPECT_GT(wins, trials * 95 / 100);
}

TEST(AHamTest, MoreVariationMeansMoreMistakes)
{
    const std::size_t dim = 10000;
    Rng rng(5);
    const Hypervector base = Hypervector::random(dim, rng);
    Hypervector winner = base;
    winner.injectErrors(500, rng);
    Hypervector loser = base;
    loser.injectErrors(700, rng);

    const auto errorRate = [&](VariationParams variation) {
        AHamConfig cfg;
        cfg.dim = dim;
        cfg.variation = variation;
        AHam ham(cfg);
        ham.store(loser);
        ham.store(winner);
        int wrong = 0;
        const int trials = 300;
        for (int i = 0; i < trials; ++i)
            wrong += ham.search(base).classId == 0;
        return wrong;
    };
    const int nominal = errorRate(VariationParams::designPoint());
    const int stressed = errorRate(VariationParams{0.35, 0.10});
    EXPECT_LT(nominal, 5);
    EXPECT_GT(stressed, nominal + 20);
}

TEST(AHamTest, ReportedDistanceIsTheWinnersTrueDistance)
{
    const std::size_t dim = 1024;
    Rng rng(6);
    AHamConfig cfg;
    cfg.dim = dim;
    AHam ham(cfg);
    const Hypervector row = Hypervector::random(dim, rng);
    ham.store(row);
    Hypervector query = row;
    query.injectErrors(100, rng);
    EXPECT_EQ(ham.search(query).reportedDistance, 100u);
}

TEST(AHamTest, SearchBeforeStoreThrows)
{
    AHamConfig cfg;
    cfg.dim = 512;
    AHam ham(cfg);
    Rng rng(7);
    EXPECT_THROW(ham.search(Hypervector::random(512, rng)),
                 std::logic_error);
}

TEST(AHamTest, StoreRejectsWrongDimension)
{
    AHamConfig cfg;
    cfg.dim = 512;
    AHam ham(cfg);
    Rng rng(8);
    EXPECT_THROW(ham.store(Hypervector::random(256, rng)),
                 std::invalid_argument);
}

} // namespace

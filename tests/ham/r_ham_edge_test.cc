/**
 * @file
 * Edge-case tests for R-HAM: dimensions that do not fill the last
 * block, unusual block widths, mixed approximation knobs, and
 * consistency between the sensed distance and the software truth
 * over random configurations.
 */

#include <gtest/gtest.h>

#include "core/random.hh"
#include "ham/r_ham.hh"

namespace
{

using hdham::Hypervector;
using hdham::Rng;
using hdham::ham::RHam;
using hdham::ham::RHamConfig;

TEST(RHamEdgeTest, PartialLastBlockCountsCorrectly)
{
    // dim = 10 with 4-bit blocks: blocks cover bits [0,4), [4,8),
    // [8,10); the last block has only 2 live cells.
    RHamConfig cfg;
    cfg.dim = 10;
    cfg.blockBits = 4;
    EXPECT_EQ(cfg.totalBlocks(), 3u);
    RHam ham(cfg);
    Hypervector row(10);
    ham.store(row);
    Hypervector query(10);
    query.set(8, true);
    query.set(9, true);
    const auto result = ham.search(query);
    EXPECT_EQ(result.reportedDistance, 2u);
}

TEST(RHamEdgeTest, SingleClassAlwaysWins)
{
    RHamConfig cfg;
    cfg.dim = 256;
    RHam ham(cfg);
    Rng rng(1);
    ham.store(Hypervector::random(256, rng));
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(ham.search(Hypervector::random(256, rng)).classId,
                  0u);
    }
}

TEST(RHamEdgeTest, SixtyFourBitBlocks)
{
    RHamConfig cfg;
    cfg.dim = 640;
    cfg.blockBits = 64;
    RHam ham(cfg);
    Rng rng(2);
    const Hypervector row = Hypervector::random(640, rng);
    ham.store(row);
    Hypervector query = row;
    query.injectErrors(40, rng);
    // Wide blocks saturate their sensing at some point, but the
    // histogram bookkeeping must stay exact at nominal voltage
    // because the ideal ladder is calibrated per width.
    const auto result = ham.search(query);
    EXPECT_EQ(result.classId, 0u);
}

TEST(RHamEdgeTest, MixedKnobsRespectRegions)
{
    // 100 blocks: 20 overscaled, 30 deep, 25 off, 25 nominal.
    RHamConfig cfg;
    cfg.dim = 400;
    cfg.blockBits = 4;
    cfg.overscaledBlocks = 20;
    cfg.deepOverscaledBlocks = 30;
    cfg.blocksOff = 25;
    RHam ham(cfg);
    EXPECT_EQ(ham.worstCaseDistanceError(), 20u + 60u + 100u);

    Rng rng(3);
    const Hypervector row = Hypervector::random(400, rng);
    ham.store(row);
    // A mismatch only in the powered-off tail region (last 25
    // blocks = bits [300, 400)) must never be sensed.
    Hypervector query = row;
    query.flip(399);
    query.flip(320);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ham.search(query).reportedDistance, 0u);
}

TEST(RHamEdgeTest, AllBlocksOffSensesZero)
{
    RHamConfig cfg;
    cfg.dim = 64;
    cfg.blocksOff = cfg.totalBlocks();
    RHam ham(cfg);
    Rng rng(4);
    ham.store(Hypervector::random(64, rng));
    EXPECT_EQ(ham.search(Hypervector::random(64, rng))
                  .reportedDistance,
              0u);
}

TEST(RHamEdgeTest, SensedDistanceTracksTruthAcrossRandomConfigs)
{
    Rng rng(5);
    for (int trial = 0; trial < 15; ++trial) {
        const std::size_t blockChoices[] = {1, 2, 4, 8};
        RHamConfig cfg;
        cfg.dim = 64 * (2 + rng.nextBelow(30));
        cfg.blockBits = blockChoices[rng.nextBelow(4)];
        cfg.seed = rng.next();
        RHam ham(cfg);
        const Hypervector row = Hypervector::random(cfg.dim, rng);
        ham.store(row);
        const std::size_t errs = rng.nextBelow(cfg.dim / 8 + 1);
        Hypervector query = row;
        query.injectErrors(errs, rng);
        const auto result = ham.search(query);
        EXPECT_NEAR(static_cast<double>(result.reportedDistance),
                    static_cast<double>(errs),
                    3.0 + 0.05 * static_cast<double>(errs))
            << "dim=" << cfg.dim << " width=" << cfg.blockBits
            << " errs=" << errs;
    }
}

TEST(RHamEdgeTest, DistinctSeedsGiveIndependentNoise)
{
    RHamConfig a, b;
    a.dim = b.dim = 10000;
    a.overscaledBlocks = b.overscaledBlocks = 2500;
    b.seed = a.seed ^ 0xdeadbeefULL;
    RHam hamA(a), hamB(b);
    Rng rng(6);
    const Hypervector row = Hypervector::random(10000, rng);
    hamA.store(row);
    hamB.store(row);
    Hypervector query = row;
    query.injectErrors(2000, rng);
    int equal = 0;
    const int trials = 30;
    for (int i = 0; i < trials; ++i) {
        equal += hamA.search(query).reportedDistance ==
                 hamB.search(query).reportedDistance;
    }
    EXPECT_LT(equal, trials);
}

} // namespace

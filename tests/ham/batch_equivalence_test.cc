/**
 * @file
 * The batched query engine's determinism contract: for every HAM
 * design, searchBatch() is bit-identical to the equivalent sequence
 * of search() calls, for any thread count and any batch split.
 * Stochastic designs (R-HAM, A-HAM) satisfy this by drawing noise
 * from per-query counter-derived RNG substreams.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/distance.hh"
#include "core/hypervector.hh"
#include "core/random.hh"
#include "ham/a_ham.hh"
#include "ham/d_ham.hh"
#include "ham/ham.hh"
#include "ham/r_ham.hh"

namespace
{

using hdham::Hypervector;
using hdham::Rng;
namespace ham = hdham::ham;

constexpr std::size_t kDim = 2048;
constexpr std::size_t kClasses = 21;
constexpr std::size_t kQueries = 32;

/** Factory making a fresh, identically-configured design instance. */
template <typename HamT> std::unique_ptr<ham::Ham> makeFresh();

template <> std::unique_ptr<ham::Ham> makeFresh<ham::DHam>()
{
    ham::DHamConfig cfg;
    cfg.dim = kDim;
    return std::make_unique<ham::DHam>(cfg);
}

template <> std::unique_ptr<ham::Ham> makeFresh<ham::RHam>()
{
    ham::RHamConfig cfg;
    cfg.dim = kDim;
    // Every block overscaled so stochastic sensing actually fires.
    cfg.overscaledBlocks = cfg.totalBlocks();
    return std::make_unique<ham::RHam>(cfg);
}

template <> std::unique_ptr<ham::Ham> makeFresh<ham::AHam>()
{
    ham::AHamConfig cfg;
    cfg.dim = kDim;
    return std::make_unique<ham::AHam>(cfg);
}

std::vector<Hypervector>
corpus(std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Hypervector> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(Hypervector::random(kDim, rng));
    return out;
}

template <typename HamT>
std::unique_ptr<ham::Ham>
trainedFresh()
{
    auto design = makeFresh<HamT>();
    for (const Hypervector &hv : corpus(kClasses, 101))
        design->store(hv);
    return design;
}

void
expectSameResults(const std::vector<ham::HamResult> &a,
                  const std::vector<ham::HamResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
        EXPECT_EQ(a[q].classId, b[q].classId) << "query " << q;
        EXPECT_EQ(a[q].reportedDistance, b[q].reportedDistance)
            << "query " << q;
    }
}

template <typename HamT> class BatchEquivalenceTest
    : public ::testing::Test
{
};

using Designs = ::testing::Types<ham::DHam, ham::RHam, ham::AHam>;
TYPED_TEST_SUITE(BatchEquivalenceTest, Designs);

TYPED_TEST(BatchEquivalenceTest, BatchMatchesSequentialLoop)
{
    const auto queries = corpus(kQueries, 202);

    auto sequentialHam = trainedFresh<TypeParam>();
    std::vector<ham::HamResult> sequential;
    for (const Hypervector &query : queries)
        sequential.push_back(sequentialHam->search(query));

    auto batchHam = trainedFresh<TypeParam>();
    expectSameResults(batchHam->searchBatch(queries, 1), sequential);
}

TYPED_TEST(BatchEquivalenceTest, IdenticalAcrossThreadCounts)
{
    const auto queries = corpus(kQueries, 303);

    auto reference = trainedFresh<TypeParam>();
    const auto expected = reference->searchBatch(queries, 1);

    for (const std::size_t threads : {2u, 8u, 0u}) {
        auto design = trainedFresh<TypeParam>();
        expectSameResults(design->searchBatch(queries, threads),
                          expected);
    }
}

TYPED_TEST(BatchEquivalenceTest, InvariantUnderBatchSplit)
{
    const auto queries = corpus(kQueries, 404);

    auto wholeHam = trainedFresh<TypeParam>();
    const auto whole = wholeHam->searchBatch(queries, 2);

    auto splitHam = trainedFresh<TypeParam>();
    const std::vector<Hypervector> front(queries.begin(),
                                         queries.begin() + 16);
    const std::vector<Hypervector> back(queries.begin() + 16,
                                        queries.end());
    std::vector<ham::HamResult> split =
        splitHam->searchBatch(front, 8);
    for (const auto &hit : splitHam->searchBatch(back, 3))
        split.push_back(hit);

    expectSameResults(split, whole);
}

TYPED_TEST(BatchEquivalenceTest, CounterAdvancesAcrossMixedCalls)
{
    // search() and searchBatch() share the lifetime query counter,
    // so interleaving them must replay the same substream sequence.
    const auto queries = corpus(kQueries, 505);

    auto mixedHam = trainedFresh<TypeParam>();
    std::vector<ham::HamResult> mixed;
    mixed.push_back(mixedHam->search(queries[0]));
    const std::vector<Hypervector> middle(queries.begin() + 1,
                                          queries.end() - 1);
    for (const auto &hit : mixedHam->searchBatch(middle, 4))
        mixed.push_back(hit);
    mixed.push_back(mixedHam->search(queries.back()));

    auto batchHam = trainedFresh<TypeParam>();
    expectSameResults(mixed, batchHam->searchBatch(queries, 1));
}

TYPED_TEST(BatchEquivalenceTest, EmptyDesignThrows)
{
    auto design = makeFresh<TypeParam>();
    const auto queries = corpus(1, 606);
    EXPECT_THROW(design->searchBatch(queries), std::logic_error);
}

/**
 * Kernel choice must never show through in results: distances are
 * exact integer counts whichever kernel computes them. Runs the full
 * batch under every *registered* kernel this host can execute and
 * demands bit-identity -- a backend added to the registry is picked
 * up here without touching this test.
 */
TYPED_TEST(BatchEquivalenceTest, InvariantAcrossKernels)
{
    namespace distance = hdham::distance;
    const auto queries = corpus(kQueries, 707);

    auto reference = trainedFresh<TypeParam>();
    distance::setKernelByName("scalar");
    const auto expected = reference->searchBatch(queries, 2);

    for (const distance::KernelEntry &entry : distance::kernels()) {
        if (!entry.usable())
            continue;
        distance::setKernelByName(entry.name);
        auto design = trainedFresh<TypeParam>();
        expectSameResults(design->searchBatch(queries, 2), expected);
    }
    distance::setKernelByName("auto");
}

/**
 * The software oracle rides the same batch executor; its contract is
 * the same bit-identity between searchBatch() and sequential
 * search(), for any thread count.
 */
TEST(SoftwareBatchEquivalenceTest, BatchMatchesSequentialSearch)
{
    hdham::AssociativeMemory am(kDim);
    for (const Hypervector &hv : corpus(kClasses, 808))
        am.store(hv);
    const auto queries = corpus(kQueries, 909);

    std::vector<hdham::SearchResult> sequential;
    for (const Hypervector &query : queries)
        sequential.push_back(am.search(query));

    for (const std::size_t threads : {1u, 4u, 0u}) {
        const auto batch = am.searchBatch(queries, threads);
        ASSERT_EQ(batch.size(), sequential.size());
        for (std::size_t q = 0; q < batch.size(); ++q) {
            EXPECT_EQ(batch[q].classId, sequential[q].classId)
                << "query " << q << ", threads " << threads;
            EXPECT_EQ(batch[q].bestDistance,
                      sequential[q].bestDistance)
                << "query " << q << ", threads " << threads;
        }
    }
}

TEST(SoftwareBatchEquivalenceTest, EmptyMemoryThrows)
{
    hdham::AssociativeMemory am(kDim);
    const auto queries = corpus(1, 1010);
    EXPECT_THROW(am.searchBatch(queries), std::logic_error);
}

} // namespace

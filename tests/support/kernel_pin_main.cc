/**
 * @file
 * gtest main for test binaries that run once per Hamming backend
 * pinned via HDHAM_KERNEL (the check-kernels matrix). When the
 * pinned backend is registered but this host cannot execute it
 * (e.g. neon on x86-64, avx512 on an AVX2-only part), exit 77 so
 * ctest reports a loud SKIP (SKIP_RETURN_CODE 77) instead of the
 * dispatcher silently falling back and the run passing as if the
 * backend had been covered. Unknown names still fall through to the
 * tests, which pin the warn-and-fall-back behavior themselves.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "core/distance.hh"

int
main(int argc, char **argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    if (const char *env = std::getenv("HDHAM_KERNEL")) {
        const hdham::distance::KernelEntry *entry =
            hdham::distance::findKernel(env);
        if (entry && !entry->usable()) {
            std::printf("SKIP: kernel '%s' is registered but not "
                        "available on this host (needs %s)\n",
                        entry->name, entry->requirement);
            return 77;
        }
    }
    return RUN_ALL_TESTS();
}

/**
 * @file
 * Unit tests for the recognition pipeline (scaled down for speed).
 */

#include <gtest/gtest.h>

#include "lang/corpus.hh"
#include "lang/pipeline.hh"

namespace
{

using hdham::Hypervector;
using hdham::lang::CorpusConfig;
using hdham::lang::PipelineConfig;
using hdham::lang::RecognitionPipeline;
using hdham::lang::SyntheticCorpus;

class PipelineTest : public ::testing::Test
{
  protected:
    static const SyntheticCorpus &
    corpus()
    {
        static const SyntheticCorpus instance = [] {
            CorpusConfig cfg;
            cfg.trainChars = 20000;
            cfg.testSentences = 20;
            return SyntheticCorpus(cfg);
        }();
        return instance;
    }

    static const RecognitionPipeline &
    pipeline()
    {
        static const RecognitionPipeline instance = [] {
            PipelineConfig cfg;
            cfg.dim = 2048;
            return RecognitionPipeline(corpus(), cfg);
        }();
        return instance;
    }
};

TEST_F(PipelineTest, TrainsOneHypervectorPerLanguage)
{
    EXPECT_EQ(pipeline().memory().size(), 21u);
    EXPECT_EQ(pipeline().memory().dim(), 2048u);
    EXPECT_EQ(pipeline().memory().labelOf(4), "english");
}

TEST_F(PipelineTest, LearnedVectorsAreRoughlyBalanced)
{
    for (std::size_t lang = 0; lang < 21; ++lang) {
        const auto pop = pipeline().memory().vectorOf(lang).popcount();
        EXPECT_NEAR(pop, 1024.0, 200.0) << "language " << lang;
    }
}

TEST_F(PipelineTest, CachesAllQueries)
{
    EXPECT_EQ(pipeline().queries().size(), 21u * 20u);
    for (const auto &q : pipeline().queries()) {
        EXPECT_EQ(q.vector.dim(), 2048u);
        EXPECT_LT(q.trueLang, 21u);
    }
}

TEST_F(PipelineTest, ExactAccuracyIsWellAboveChance)
{
    const auto eval = pipeline().evaluateExact();
    EXPECT_EQ(eval.total, 21u * 20u);
    // Chance is ~4.8%; the classifier should be way above even at
    // this reduced dimensionality.
    EXPECT_GT(eval.accuracy(), 0.85);
}

TEST_F(PipelineTest, ConfusionMatrixIsConsistent)
{
    const auto eval = pipeline().evaluateExact();
    ASSERT_EQ(eval.confusion.size(), 21u);
    std::size_t total = 0, diagonal = 0;
    for (std::size_t t = 0; t < 21; ++t) {
        std::size_t rowSum = 0;
        for (std::size_t p = 0; p < 21; ++p)
            rowSum += eval.confusion[t][p];
        EXPECT_EQ(rowSum, 20u) << "row " << t;
        total += rowSum;
        diagonal += eval.confusion[t][t];
    }
    EXPECT_EQ(total, eval.total);
    EXPECT_EQ(diagonal, eval.correct);
}

TEST_F(PipelineTest, EvaluateHonorsCustomClassifier)
{
    // A classifier that always answers 3 scores exactly the number
    // of language-3 sentences.
    const auto eval = pipeline().evaluate(
        [](const Hypervector &) { return std::size_t{3}; });
    EXPECT_EQ(eval.correct, 20u);
    EXPECT_EQ(eval.total, 21u * 20u);
}

TEST_F(PipelineTest, DeterministicAcrossConstructions)
{
    PipelineConfig cfg;
    cfg.dim = 1024;
    RecognitionPipeline a(corpus(), cfg), b(corpus(), cfg);
    EXPECT_EQ(a.memory().vectorOf(0), b.memory().vectorOf(0));
    EXPECT_EQ(a.queries().front().vector,
              b.queries().front().vector);
    EXPECT_EQ(a.evaluateExact().correct, b.evaluateExact().correct);
}

TEST_F(PipelineTest, HigherDimensionDoesNotHurtAccuracy)
{
    PipelineConfig low, high;
    low.dim = 256;
    high.dim = 4096;
    RecognitionPipeline lowPipe(corpus(), low);
    RecognitionPipeline highPipe(corpus(), high);
    EXPECT_GE(highPipe.evaluateExact().accuracy() + 0.02,
              lowPipe.evaluateExact().accuracy());
}

TEST_F(PipelineTest, MetricsAreConsistentWithTheConfusionMatrix)
{
    const auto eval = pipeline().evaluateExact();
    // Balanced test set: macro-F1 tracks micro accuracy closely.
    EXPECT_NEAR(eval.macroF1(), eval.accuracy(), 0.05);
    double recallSum = 0.0;
    for (std::size_t c = 0; c < 21; ++c) {
        const double r = eval.recall(c);
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
        recallSum += r;
    }
    // Mean per-class recall == micro accuracy when classes are
    // equally sized.
    EXPECT_NEAR(recallSum / 21.0, eval.accuracy(), 1e-9);
}

TEST_F(PipelineTest, MinPairwiseMarginScalesWithDim)
{
    PipelineConfig low, high;
    low.dim = 1024;
    high.dim = 4096;
    RecognitionPipeline lowPipe(corpus(), low);
    RecognitionPipeline highPipe(corpus(), high);
    EXPECT_GT(highPipe.memory().minPairwiseDistance(),
              2 * lowPipe.memory().minPairwiseDistance());
}

} // namespace

/**
 * @file
 * Unit tests for the synthetic 21-language corpus generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "lang/corpus.hh"

namespace
{

using hdham::lang::CorpusConfig;
using hdham::lang::SyntheticCorpus;

CorpusConfig
smallConfig()
{
    CorpusConfig cfg;
    cfg.trainChars = 2000;
    cfg.testSentences = 5;
    return cfg;
}

TEST(CorpusTest, GeneratesRequestedShape)
{
    const CorpusConfig cfg = smallConfig();
    SyntheticCorpus corpus(cfg);
    EXPECT_EQ(corpus.numLanguages(), 21u);
    EXPECT_EQ(corpus.totalTestSentences(), 21u * 5u);
    for (std::size_t lang = 0; lang < 21; ++lang) {
        EXPECT_EQ(corpus.trainingText(lang).size(), cfg.trainChars);
        EXPECT_EQ(corpus.testSentences(lang).size(),
                  cfg.testSentences);
    }
}

TEST(CorpusTest, SentenceLengthsRespectBounds)
{
    CorpusConfig cfg = smallConfig();
    cfg.sentenceMinChars = 40;
    cfg.sentenceMaxChars = 60;
    SyntheticCorpus corpus(cfg);
    for (std::size_t lang = 0; lang < corpus.numLanguages(); ++lang) {
        for (const auto &s : corpus.testSentences(lang)) {
            EXPECT_GE(s.size(), 40u);
            EXPECT_LE(s.size(), 60u);
        }
    }
}

TEST(CorpusTest, UsesEuroparlLabels)
{
    SyntheticCorpus corpus(smallConfig());
    EXPECT_EQ(corpus.labelOf(0), "bulgarian");
    EXPECT_EQ(corpus.labelOf(4), "english");
    EXPECT_EQ(corpus.labelOf(20), "swedish");
    std::set<std::string> labels;
    for (std::size_t lang = 0; lang < 21; ++lang)
        labels.insert(corpus.labelOf(lang));
    EXPECT_EQ(labels.size(), 21u);
}

TEST(CorpusTest, ExtraLanguagesGetSyntheticLabels)
{
    CorpusConfig cfg = smallConfig();
    cfg.numLanguages = 25;
    SyntheticCorpus corpus(cfg);
    EXPECT_EQ(corpus.labelOf(0), "bulgarian");
    EXPECT_EQ(corpus.labelOf(21), "class21");
    EXPECT_EQ(corpus.labelOf(24), "class24");
}

TEST(CorpusTest, DeterministicPerSeed)
{
    SyntheticCorpus a(smallConfig()), b(smallConfig());
    for (std::size_t lang = 0; lang < 21; ++lang) {
        EXPECT_EQ(a.trainingText(lang), b.trainingText(lang));
        EXPECT_EQ(a.testSentences(lang), b.testSentences(lang));
    }
}

TEST(CorpusTest, SeedChangesCorpus)
{
    CorpusConfig other = smallConfig();
    other.seed ^= 1;
    SyntheticCorpus a(smallConfig()), b(other);
    EXPECT_NE(a.trainingText(0), b.trainingText(0));
}

TEST(CorpusTest, FamilyMembersAreCloserThanStrangers)
{
    // Languages 0..2 share a family; 0 and 3 do not.
    SyntheticCorpus corpus(smallConfig());
    const double withinFamily =
        corpus.modelOf(0).divergence(corpus.modelOf(1));
    const double acrossFamilies =
        corpus.modelOf(0).divergence(corpus.modelOf(3));
    EXPECT_LT(withinFamily, acrossFamilies);
}

TEST(CorpusTest, LanguagesAreDistinct)
{
    SyntheticCorpus corpus(smallConfig());
    for (std::size_t i = 0; i < 21; ++i)
        for (std::size_t j = i + 1; j < 21; ++j)
            EXPECT_GT(corpus.modelOf(i).divergence(corpus.modelOf(j)),
                      0.05)
                << i << " vs " << j;
}

TEST(CorpusTest, ValidatesConfig)
{
    CorpusConfig bad = smallConfig();
    bad.numLanguages = 0;
    EXPECT_THROW(SyntheticCorpus{bad}, std::invalid_argument);

    bad = smallConfig();
    bad.familySize = 0;
    EXPECT_THROW(SyntheticCorpus{bad}, std::invalid_argument);

    bad = smallConfig();
    bad.sentenceMinChars = 100;
    bad.sentenceMaxChars = 50;
    EXPECT_THROW(SyntheticCorpus{bad}, std::invalid_argument);
}

TEST(CorpusTest, TrainingTextUsesAlphabetOnly)
{
    SyntheticCorpus corpus(smallConfig());
    for (const char c : corpus.trainingText(2))
        EXPECT_TRUE(c == ' ' || (c >= 'a' && c <= 'z'));
}

} // namespace

namespace
{

TEST(CorpusTest, CustomLabelsOverrideDefaults)
{
    hdham::lang::CorpusConfig cfg;
    cfg.trainChars = 1000;
    cfg.testSentences = 2;
    cfg.numLanguages = 3;
    cfg.labels = {"sports", "politics"};
    hdham::lang::SyntheticCorpus corpus(cfg);
    EXPECT_EQ(corpus.labelOf(0), "sports");
    EXPECT_EQ(corpus.labelOf(1), "politics");
    EXPECT_EQ(corpus.labelOf(2), "class2");
}

} // namespace

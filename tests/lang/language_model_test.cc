/**
 * @file
 * Unit tests for the synthetic language (Markov) source.
 */

#include <gtest/gtest.h>

#include <cctype>

#include "core/item_memory.hh"
#include "lang/language_model.hh"

namespace
{

using hdham::Rng;
using hdham::TextAlphabet;
using hdham::lang::LanguageModel;

TEST(LanguageModelTest, ProbabilitiesSumToOnePerContext)
{
    Rng rng(1);
    const LanguageModel model = LanguageModel::random(rng);
    for (std::size_t c1 = 0; c1 < LanguageModel::alphabet; c1 += 5) {
        for (std::size_t c2 = 0; c2 < LanguageModel::alphabet;
             c2 += 5) {
            double sum = 0.0;
            for (std::size_t s = 0; s < LanguageModel::alphabet; ++s)
                sum += model.probability(c1, c2, s);
            EXPECT_NEAR(sum, 1.0, 1e-9);
        }
    }
}

TEST(LanguageModelTest, GeneratesOnlyAlphabetCharacters)
{
    Rng rng(2);
    const LanguageModel model = LanguageModel::random(rng);
    const std::string text = model.generate(2000, rng);
    ASSERT_EQ(text.size(), 2000u);
    for (const char c : text)
        EXPECT_TRUE(c == ' ' || (c >= 'a' && c <= 'z'));
}

TEST(LanguageModelTest, GenerationIsDeterministic)
{
    Rng modelRng(3);
    const LanguageModel model = LanguageModel::random(modelRng);
    Rng a(4), b(4);
    EXPECT_EQ(model.generate(500, a), model.generate(500, b));
}

TEST(LanguageModelTest, SpaceBiasControlsWordLength)
{
    Rng rng(5);
    const LanguageModel wordy = LanguageModel::random(rng, 0.30);
    const LanguageModel dense = LanguageModel::random(rng, 0.02);
    Rng gen(6);
    const std::string a = wordy.generate(5000, gen);
    const std::string b = dense.generate(5000, gen);
    const auto spaces = [](const std::string &s) {
        std::size_t n = 0;
        for (const char c : s)
            n += c == ' ';
        return n;
    };
    EXPECT_GT(spaces(a), 2 * spaces(b));
}

TEST(LanguageModelTest, MixEndpointsReproduceInputs)
{
    Rng rng(7);
    const LanguageModel a = LanguageModel::random(rng);
    const LanguageModel b = LanguageModel::random(rng);
    const LanguageModel onlyA = LanguageModel::mix(a, b, 0.0);
    const LanguageModel onlyB = LanguageModel::mix(a, b, 1.0);
    EXPECT_NEAR(a.divergence(onlyA), 0.0, 1e-12);
    EXPECT_NEAR(b.divergence(onlyB), 0.0, 1e-12);
}

TEST(LanguageModelTest, MixRejectsBadWeight)
{
    Rng rng(8);
    const LanguageModel a = LanguageModel::random(rng);
    const LanguageModel b = LanguageModel::random(rng);
    EXPECT_THROW(LanguageModel::mix(a, b, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(LanguageModel::mix(a, b, 1.1),
                 std::invalid_argument);
}

TEST(LanguageModelTest, DivergenceAxioms)
{
    Rng rng(9);
    const LanguageModel a = LanguageModel::random(rng);
    const LanguageModel b = LanguageModel::random(rng);
    EXPECT_NEAR(a.divergence(a), 0.0, 1e-12);
    EXPECT_NEAR(a.divergence(b), b.divergence(a), 1e-12);
    EXPECT_GT(a.divergence(b), 0.0);
    EXPECT_LE(a.divergence(b), 1.0);
}

TEST(LanguageModelTest, MixingShrinksDivergence)
{
    Rng rng(10);
    const LanguageModel a = LanguageModel::random(rng);
    const LanguageModel b = LanguageModel::random(rng);
    const LanguageModel mixed = LanguageModel::mix(a, b, 0.3);
    EXPECT_LT(a.divergence(mixed), a.divergence(b));
    // Linear mixing: divergence scales with the weight.
    EXPECT_NEAR(a.divergence(mixed), 0.3 * a.divergence(b), 1e-9);
}

TEST(LanguageModelTest, ConcentrationSkewsDistributions)
{
    Rng rng(11);
    const LanguageModel flat = LanguageModel::random(rng, 0.15, 1.0);
    const LanguageModel peaky =
        LanguageModel::random(rng, 0.15, 24.0);
    const auto maxProb = [](const LanguageModel &m) {
        double total = 0.0;
        for (std::size_t c1 = 0; c1 < 27; ++c1) {
            for (std::size_t c2 = 0; c2 < 27; ++c2) {
                double best = 0.0;
                for (std::size_t s = 0; s < 27; ++s)
                    best = std::max(best, m.probability(c1, c2, s));
                total += best;
            }
        }
        return total / (27.0 * 27.0);
    };
    EXPECT_GT(maxProb(peaky), maxProb(flat) + 0.2);
}

} // namespace

/**
 * @file
 * Tests for the chunked fork-join helper behind the batched query
 * engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/parallel_for.hh"

namespace
{

using hdham::parallelFor;
using hdham::resolveThreads;

TEST(ResolveThreadsTest, NeverReturnsZero)
{
    EXPECT_GE(resolveThreads(0), 1u);
    EXPECT_EQ(resolveThreads(1), 1u);
    EXPECT_EQ(resolveThreads(7), 7u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    for (const std::size_t threads : {1u, 2u, 3u, 8u}) {
        const std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        parallelFor(n, threads,
                    [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i)
                            ++hits[i];
                    });
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelForTest, ChunksAreContiguousAndOrdered)
{
    // The determinism contract: the partition into chunks is a
    // function of (n, workers) only, and chunks tile [0, n) in
    // order.
    const std::size_t n = 37;
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallelFor(n, 4, [&](std::size_t begin, std::size_t end) {
        const std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    std::size_t next = 0;
    for (const auto &[begin, end] : chunks) {
        EXPECT_EQ(begin, next);
        EXPECT_LT(begin, end);
        next = end;
    }
    EXPECT_EQ(next, n);
}

TEST(ParallelForTest, MoreThreadsThanWork)
{
    std::vector<std::atomic<int>> hits(3);
    parallelFor(3, 16, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, EmptyRangeRunsNothing)
{
    bool ran = false;
    parallelFor(0, 4, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesWorkerException)
{
    EXPECT_THROW(
        parallelFor(100, 4,
                    [&](std::size_t begin, std::size_t) {
                        if (begin >= 25)
                            throw std::runtime_error("worker boom");
                    }),
        std::runtime_error);
}

TEST(ParallelForTest, ZeroThreadsMeansAllHardwareThreads)
{
    std::vector<std::atomic<int>> hits(64);
    parallelFor(64, 0, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

} // namespace

/**
 * @file
 * Unit tests for the dense row store.
 */

#include <gtest/gtest.h>

#include "core/assoc_memory.hh"
#include "core/packed_rows.hh"
#include "core/random.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::PackedRows;
using hdham::Rng;

TEST(PackedRowsTest, RejectsZeroDimension)
{
    EXPECT_THROW(PackedRows{0}, std::invalid_argument);
}

TEST(PackedRowsTest, AppendAssignsSequentialIndices)
{
    PackedRows rows(128);
    Rng rng(1);
    EXPECT_EQ(rows.rows(), 0u);
    EXPECT_EQ(rows.append(Hypervector::random(128, rng)), 0u);
    EXPECT_EQ(rows.append(Hypervector::random(128, rng)), 1u);
    EXPECT_EQ(rows.rows(), 2u);
    EXPECT_EQ(rows.wordsPerRow(), 2u);
}

TEST(PackedRowsTest, AppendRejectsWrongDimension)
{
    PackedRows rows(128);
    Rng rng(2);
    EXPECT_THROW(rows.append(Hypervector::random(64, rng)),
                 std::invalid_argument);
}

TEST(PackedRowsTest, RowVectorRoundTrips)
{
    Rng rng(3);
    for (std::size_t dim : {64u, 100u, 130u, 1000u}) {
        PackedRows rows(dim);
        const Hypervector hv = Hypervector::random(dim, rng);
        rows.append(hv);
        EXPECT_EQ(rows.rowVector(0), hv) << "dim " << dim;
    }
}

TEST(PackedRowsTest, DistanceMatchesHypervector)
{
    Rng rng(4);
    for (std::size_t dim : {65u, 512u, 1000u}) {
        PackedRows rows(dim);
        std::vector<Hypervector> stored;
        for (int r = 0; r < 6; ++r) {
            stored.push_back(Hypervector::random(dim, rng));
            rows.append(stored.back());
        }
        const Hypervector query = Hypervector::random(dim, rng);
        for (std::size_t r = 0; r < stored.size(); ++r) {
            EXPECT_EQ(rows.distance(r, query, dim),
                      stored[r].hamming(query));
            const std::size_t prefix = dim / 3;
            EXPECT_EQ(rows.distance(r, query, prefix),
                      stored[r].hammingPrefix(query, prefix));
        }
    }
}

TEST(PackedRowsTest, DistancesFillsEveryRow)
{
    Rng rng(5);
    PackedRows rows(256);
    for (int r = 0; r < 9; ++r)
        rows.append(Hypervector::random(256, rng));
    const Hypervector query = Hypervector::random(256, rng);
    std::vector<std::size_t> out;
    rows.distances(query, 256, out);
    ASSERT_EQ(out.size(), 9u);
    for (std::size_t r = 0; r < 9; ++r)
        EXPECT_EQ(out[r], rows.distance(r, query, 256));
}

TEST(PackedRowsTest, NearestAgreesWithAssociativeMemory)
{
    Rng rng(6);
    const std::size_t dim = 1000;
    PackedRows rows(dim);
    AssociativeMemory oracle(dim);
    for (int r = 0; r < 21; ++r) {
        const Hypervector hv = Hypervector::random(dim, rng);
        rows.append(hv);
        oracle.store(hv);
    }
    for (int q = 0; q < 50; ++q) {
        const Hypervector query = Hypervector::random(dim, rng);
        std::size_t best = 0;
        const std::size_t winner = rows.nearest(query, dim, &best);
        const auto expect = oracle.search(query);
        EXPECT_EQ(winner, expect.classId);
        EXPECT_EQ(best, expect.bestDistance);
    }
}

TEST(PackedRowsTest, NearestOnEmptyThrows)
{
    PackedRows rows(64);
    Rng rng(7);
    EXPECT_THROW(rows.nearest(Hypervector::random(64, rng), 64),
                 std::logic_error);
}

TEST(PackedRowsTest, TiesResolveToLowestIndex)
{
    PackedRows rows(8);
    rows.append(Hypervector::fromString("00000001"));
    rows.append(Hypervector::fromString("00000010"));
    EXPECT_EQ(rows.nearest(Hypervector(8), 8), 0u);
}

} // namespace

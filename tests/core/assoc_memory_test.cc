/**
 * @file
 * Unit tests for the exact software associative memory.
 */

#include <gtest/gtest.h>

#include "core/assoc_memory.hh"
#include "core/hypervector.hh"
#include "core/random.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;

TEST(AssocMemoryTest, StoreAssignsSequentialIds)
{
    AssociativeMemory am(64);
    Rng rng(1);
    EXPECT_EQ(am.store(Hypervector::random(64, rng), "a"), 0u);
    EXPECT_EQ(am.store(Hypervector::random(64, rng), "b"), 1u);
    EXPECT_EQ(am.size(), 2u);
    EXPECT_EQ(am.labelOf(0), "a");
    EXPECT_EQ(am.labelOf(1), "b");
}

TEST(AssocMemoryTest, StoreRejectsWrongDimension)
{
    AssociativeMemory am(64);
    Rng rng(2);
    EXPECT_THROW(am.store(Hypervector::random(65, rng)),
                 std::invalid_argument);
}

TEST(AssocMemoryTest, EmptySearchThrows)
{
    AssociativeMemory am(64);
    Rng rng(3);
    EXPECT_THROW(am.search(Hypervector::random(64, rng)),
                 std::logic_error);
}

TEST(AssocMemoryTest, FindsExactMatch)
{
    AssociativeMemory am(256);
    Rng rng(4);
    std::vector<Hypervector> stored;
    for (int i = 0; i < 8; ++i) {
        stored.push_back(Hypervector::random(256, rng));
        am.store(stored.back());
    }
    for (std::size_t i = 0; i < stored.size(); ++i) {
        const auto result = am.search(stored[i]);
        EXPECT_EQ(result.classId, i);
        EXPECT_EQ(result.bestDistance, 0u);
    }
}

TEST(AssocMemoryTest, FindsNearestUnderNoise)
{
    AssociativeMemory am(1024);
    Rng rng(5);
    std::vector<Hypervector> stored;
    for (int i = 0; i < 10; ++i) {
        stored.push_back(Hypervector::random(1024, rng));
        am.store(stored.back());
    }
    for (std::size_t i = 0; i < stored.size(); ++i) {
        Hypervector noisy = stored[i];
        noisy.injectErrors(100, rng); // well under D/4 margin
        const auto result = am.search(noisy);
        EXPECT_EQ(result.classId, i);
        EXPECT_EQ(result.bestDistance, 100u);
    }
}

TEST(AssocMemoryTest, DetailedDistancesVectorIsComplete)
{
    AssociativeMemory am(128);
    Rng rng(6);
    std::vector<Hypervector> stored;
    for (int i = 0; i < 5; ++i) {
        stored.push_back(Hypervector::random(128, rng));
        am.store(stored.back());
    }
    const Hypervector query = Hypervector::random(128, rng);
    const auto result = am.searchDetailed(query);
    ASSERT_EQ(result.distances.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(result.distances[i], stored[i].hamming(query));
}

TEST(AssocMemoryTest, FastSearchLeavesDistancesEmpty)
{
    AssociativeMemory am(128);
    Rng rng(6);
    for (int i = 0; i < 5; ++i)
        am.store(Hypervector::random(128, rng));
    const Hypervector query = Hypervector::random(128, rng);
    EXPECT_TRUE(am.search(query).distances.empty());

    const auto detailed = am.searchDetailed(query);
    EXPECT_EQ(am.search(query).classId, detailed.classId);
    EXPECT_EQ(am.search(query).bestDistance, detailed.bestDistance);
}

TEST(AssocMemoryTest, BatchSearchMatchesSequential)
{
    AssociativeMemory am(512);
    Rng rng(9);
    for (int i = 0; i < 12; ++i)
        am.store(Hypervector::random(512, rng));
    std::vector<Hypervector> queries;
    for (int q = 0; q < 33; ++q)
        queries.push_back(Hypervector::random(512, rng));

    const auto batch1 = am.searchBatch(queries, 1);
    ASSERT_EQ(batch1.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto sequential = am.search(queries[q]);
        EXPECT_EQ(batch1[q].classId, sequential.classId);
        EXPECT_EQ(batch1[q].bestDistance, sequential.bestDistance);
    }

    for (const std::size_t threads : {2u, 8u, 0u}) {
        const auto batchN = am.searchBatch(queries, threads);
        ASSERT_EQ(batchN.size(), queries.size());
        for (std::size_t q = 0; q < queries.size(); ++q) {
            EXPECT_EQ(batchN[q].classId, batch1[q].classId);
            EXPECT_EQ(batchN[q].bestDistance,
                      batch1[q].bestDistance);
        }
    }
}

TEST(AssocMemoryTest, BatchSearchOnEmptyMemoryThrows)
{
    AssociativeMemory am(64);
    Rng rng(10);
    const std::vector<Hypervector> queries{
        Hypervector::random(64, rng)};
    EXPECT_THROW(am.searchBatch(queries), std::logic_error);
}

TEST(AssocMemoryTest, TiesResolveToLowestId)
{
    AssociativeMemory am(8);
    am.store(Hypervector::fromString("00000000"));
    am.store(Hypervector::fromString("00000000"));
    const auto result =
        am.search(Hypervector::fromString("10000000"));
    EXPECT_EQ(result.classId, 0u);
}

TEST(AssocMemoryTest, SampledSearchUsesPrefixOnly)
{
    AssociativeMemory am(16);
    // Rows differ from the query only in the tail.
    am.store(Hypervector::fromString("0000000011111111"));
    am.store(Hypervector::fromString("1000000000000000"));
    const Hypervector query(16);
    // Full search: row 1 (distance 1) beats row 0 (distance 8).
    EXPECT_EQ(am.search(query).classId, 1u);
    // Prefix-8 search: row 0 has distance 0, row 1 distance 1.
    EXPECT_EQ(am.searchSampled(query, 8).classId, 0u);
}

TEST(AssocMemoryTest, SampledDistanceIsUnbiasedEstimate)
{
    // E[(D/d) * delta_prefix] == delta for i.i.d. components.
    Rng rng(7);
    const std::size_t dim = 10000, prefix = 5000;
    double scaledSum = 0.0, fullSum = 0.0;
    const int trials = 50;
    for (int t = 0; t < trials; ++t) {
        Hypervector a = Hypervector::random(dim, rng);
        Hypervector b = Hypervector::random(dim, rng);
        scaledSum += 2.0 * a.hammingPrefix(b, prefix);
        fullSum += a.hamming(b);
    }
    EXPECT_NEAR(scaledSum / trials, fullSum / trials,
                0.02 * fullSum / trials);
}

TEST(AssocMemoryTest, MinPairwiseDistance)
{
    AssociativeMemory am(8);
    am.store(Hypervector::fromString("00000000"));
    am.store(Hypervector::fromString("00000111"));
    am.store(Hypervector::fromString("11111111"));
    EXPECT_EQ(am.minPairwiseDistance(), 3u);
}

TEST(AssocMemoryTest, VectorOfReturnsStored)
{
    AssociativeMemory am(32);
    Rng rng(8);
    const Hypervector hv = Hypervector::random(32, rng);
    am.store(hv);
    EXPECT_EQ(am.vectorOf(0), hv);
}

} // namespace

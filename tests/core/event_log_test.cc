/**
 * @file
 * Unit and integration tests for the hdham.events.v1 slow-query log
 * (core/event_log): exact bounded-drop accounting, the JSONL export's
 * line-by-line parseability through core/json, the runCaptured span
 * collector, and the batch executor's end-to-end capture hook.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/event_log.hh"
#include "core/hypervector.hh"
#include "core/json.hh"
#include "core/metrics.hh"
#include "core/random.hh"
#include "core/trace.hh"

namespace
{

using namespace hdham;

events::QueryEvent
makeEvent(std::uint64_t index)
{
    events::QueryEvent e;
    e.unixNs = events::unixNowNs();
    e.engine = "am.batch";
    e.queryIndex = index;
    e.latencyUs = 12.5;
    return e;
}

/** Split @p text into its non-empty lines. */
std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            out.push_back(line);
    return out;
}

TEST(EventLogTest, BoundedWithExactDropCounts)
{
    events::EventLog log(2);
    EXPECT_TRUE(log.append(makeEvent(0)));
    EXPECT_TRUE(log.append(makeEvent(1)));
    EXPECT_FALSE(log.append(makeEvent(2)));
    EXPECT_FALSE(log.append(makeEvent(3)));
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.dropped(), 2u);
    const std::vector<events::QueryEvent> stored = log.events();
    ASSERT_EQ(stored.size(), 2u);
    EXPECT_EQ(stored[0].queryIndex, 0u);
    EXPECT_EQ(stored[1].queryIndex, 1u);
}

TEST(EventLogTest, EveryJsonlLineParsesAndCarriesTheSchema)
{
    events::EventLog log(2);
    events::QueryEvent e = makeEvent(7);
    trace::Event span;
    span.name = "am.chunk";
    span.startUs = 1.0;
    span.durUs = 10.0;
    span.selfUs = 10.0;
    span.depth = 1;
    span.perfDelta.v[perf::kPageFaults] = 4;
    e.spans.push_back(span);
    e.perfDelta.v[perf::kCycles] = 1234;
    e.spanDrops = 3;
    log.append(std::move(e));
    log.append(makeEvent(8));
    log.append(makeEvent(9)); // dropped

    std::ostringstream out;
    log.writeJsonl(out);
    const std::vector<std::string> docs = lines(out.str());
    ASSERT_EQ(docs.size(), 3u); // 2 records + summary

    // Line by line, each is a complete core/json document.
    const json::Value first = json::parse(docs[0]);
    EXPECT_EQ(first.at("schema").asString(), "hdham.events.v1");
    EXPECT_EQ(first.at("kind").asString(), "slow_query");
    EXPECT_EQ(first.at("engine").asString(), "am.batch");
    EXPECT_DOUBLE_EQ(first.at("query").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(first.at("latency_us").asNumber(), 12.5);
    EXPECT_GT(first.at("unix_ns").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(first.at("span_drops").asNumber(), 3.0);
    // Only the available perf counters are emitted.
    EXPECT_DOUBLE_EQ(first.at("perf").at("cycles").asNumber(),
                     1234.0);
    EXPECT_FALSE(first.at("perf").has("instructions"));
    ASSERT_EQ(first.at("spans").items().size(), 1u);
    const json::Value &jsonSpan = first.at("spans").items()[0];
    EXPECT_EQ(jsonSpan.at("name").asString(), "am.chunk");
    EXPECT_DOUBLE_EQ(jsonSpan.at("dur_us").asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(jsonSpan.at("self_us").asNumber(), 10.0);
    EXPECT_DOUBLE_EQ(jsonSpan.at("depth").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(jsonSpan.at("page_faults").asNumber(), 4.0);
    EXPECT_FALSE(jsonSpan.has("cycles"));

    // The summary footer reports the exact totals, so downstream
    // consumers can see truncation.
    const json::Value summary = json::parse(docs.back());
    EXPECT_EQ(summary.at("kind").asString(), "summary");
    EXPECT_DOUBLE_EQ(summary.at("captured").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(summary.at("dropped").asNumber(), 1.0);
}

TEST(EventLogTest, EmptyLogStillWritesTheSummary)
{
    events::EventLog log(4);
    std::ostringstream out;
    log.writeJsonl(out);
    const std::vector<std::string> docs = lines(out.str());
    ASSERT_EQ(docs.size(), 1u);
    const json::Value summary = json::parse(docs[0]);
    EXPECT_EQ(summary.at("schema").asString(), "hdham.events.v1");
    EXPECT_DOUBLE_EQ(summary.at("captured").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(summary.at("dropped").asNumber(), 0.0);
}

TEST(SlowQueryCaptureTest, ArmDisarmRoundTrips)
{
    EXPECT_EQ(events::activeSlowQueryCapture().log, nullptr);
    events::EventLog log(4);
    events::setSlowQueryCapture({&log, 250.0, true});
    const events::SlowQueryCapture active =
        events::activeSlowQueryCapture();
    EXPECT_EQ(active.log, &log);
    EXPECT_DOUBLE_EQ(active.thresholdUs, 250.0);
    EXPECT_TRUE(active.capturePerf);
    events::clearSlowQueryCapture();
    EXPECT_EQ(events::activeSlowQueryCapture().log, nullptr);
}

TEST(SlowQueryCaptureTest, RunCapturedRecordsAtThresholdZero)
{
    events::EventLog log(4);
    const events::SlowQueryCapture cfg{&log, 0.0, false};
    const int result = events::runCaptured("dham.batch", 11, cfg, [] {
        TRACE_SPAN("unit.work");
        return 42;
    });
    EXPECT_EQ(result, 42);
    ASSERT_EQ(log.size(), 1u);
    const events::QueryEvent e = log.events()[0];
    EXPECT_EQ(e.engine, "dham.batch");
    EXPECT_EQ(e.queryIndex, 11u);
    EXPECT_GE(e.latencyUs, 0.0);
    // The collector saw the kernel's span even without a Tracer.
    ASSERT_EQ(e.spans.size(), 1u);
    EXPECT_STREQ(e.spans[0].name, "unit.work");
    EXPECT_EQ(e.spanDrops, 0u);
    // No perf capture requested: the delta stays fully tagged.
    EXPECT_FALSE(e.perfDelta.anyAvailable());
}

TEST(SlowQueryCaptureTest, HugeThresholdRecordsNothing)
{
    events::EventLog log(4);
    const events::SlowQueryCapture cfg{&log, 1e12, false};
    events::runCaptured("am.batch", 0, cfg, [] { return 1; });
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
}

TEST(SlowQueryCaptureTest, SpanOverflowIsCountedExactly)
{
    events::EventLog log(4);
    const events::SlowQueryCapture cfg{&log, 0.0, false};
    constexpr std::size_t kSpans = events::kSpansPerQuery + 6;
    events::runCaptured("am.batch", 0, cfg, [] {
        for (std::size_t i = 0; i < kSpans; ++i)
            TRACE_SPAN("unit.flood");
        return 0;
    });
    ASSERT_EQ(log.size(), 1u);
    const events::QueryEvent e = log.events()[0];
    EXPECT_EQ(e.spans.size(), events::kSpansPerQuery);
    EXPECT_EQ(e.spanDrops, 6u);
}

/**
 * End to end through the real query path: arm capture with threshold
 * 0, serve a batch, and expect exactly one record per query from the
 * executor's hook -- on one thread and across workers.
 */
TEST(SlowQueryCaptureTest, BatchExecutorCapturesEveryQuery)
{
    Rng rng(2017);
    AssociativeMemory am(1024);
    for (int c = 0; c < 8; ++c)
        am.store(Hypervector::random(1024, rng));
    std::vector<Hypervector> queries;
    for (int q = 0; q < 16; ++q)
        queries.push_back(Hypervector::random(1024, rng));

    const std::vector<SearchResult> expected =
        am.searchBatch(queries, 1);

    for (const std::size_t threads : {std::size_t(1),
                                      std::size_t(4)}) {
        events::EventLog log(256);
        events::setSlowQueryCapture({&log, 0.0, false});
        const std::vector<SearchResult> captured =
            am.searchBatch(queries, threads);
        events::clearSlowQueryCapture();

        EXPECT_EQ(log.size(), queries.size()) << threads;
        EXPECT_EQ(log.dropped(), 0u);
        // Capture must not perturb the answers.
        ASSERT_EQ(captured.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(captured[i].classId, expected[i].classId);
            EXPECT_EQ(captured[i].bestDistance,
                      expected[i].bestDistance);
        }
        // Every query index 0..n-1 appears exactly once.
        std::vector<int> seen(queries.size(), 0);
        for (const events::QueryEvent &e : log.events()) {
            ASSERT_LT(e.queryIndex, queries.size());
            ++seen[e.queryIndex];
            EXPECT_GT(e.unixNs, 0u);
        }
        for (const int count : seen)
            EXPECT_EQ(count, 1);
    }
}

TEST(SlowQueryCaptureTest, DisarmedPathAppendsNothing)
{
    Rng rng(7);
    AssociativeMemory am(512);
    for (int c = 0; c < 4; ++c)
        am.store(Hypervector::random(512, rng));
    std::vector<Hypervector> queries;
    for (int q = 0; q < 4; ++q)
        queries.push_back(Hypervector::random(512, rng));
    events::EventLog log(16);
    // Never armed: the executor takes the plain path.
    am.searchBatch(queries, 2);
    EXPECT_EQ(log.size(), 0u);
}

} // namespace

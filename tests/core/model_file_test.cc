/**
 * @file
 * hdham.model.v1 loader hardening: every malformed input -- any
 * truncated prefix, any flipped bit, tampered header fields,
 * corrupted section and shard tables -- must raise a precise
 * std::runtime_error and never crash (the suite is part of the
 * tier-1 set the ASan/UBSan targets run). Also pins the read-only
 * contract and the basic save/load round trip both layouts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/crc32c.hh"
#include "core/item_memory.hh"
#include "core/model_file.hh"
#include "core/random.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::ItemMemory;
using hdham::Rng;
using hdham::RowLayout;
using hdham::StoreLayout;
namespace crc32c = hdham::crc32c;
namespace modelfile = hdham::modelfile;

/** Header/section-table byte offsets of the v1 format. */
constexpr std::size_t kOffHeaderCrc = 12;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffRows = 24;
constexpr std::size_t kOffFileSize = 56;
constexpr std::size_t kOffSections = 72;
constexpr std::size_t kSectionEntryBytes = 24;

std::uint64_t
readU64At(const std::string &bytes, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                 bytes[at + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    return v;
}

void
patchU32At(std::string &bytes, std::size_t at, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        bytes[at + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xff);
    }
}

void
patchU64At(std::string &bytes, std::size_t at, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        bytes[at + static_cast<std::size_t>(i)] =
            static_cast<char>((v >> (8 * i)) & 0xff);
    }
}

struct SectionInfo
{
    std::uint64_t offset;
    std::uint64_t size;
};

SectionInfo
sectionAt(const std::string &bytes, std::size_t index)
{
    const std::size_t entry =
        kOffSections + index * kSectionEntryBytes;
    return {readU64At(bytes, entry), readU64At(bytes, entry + 8)};
}

/**
 * Recompute every section CRC and the header CRC after a deliberate
 * tamper, so the loader's *semantic* validation is what rejects the
 * file (not the checksum pass).
 */
void
refreshChecksums(std::string &bytes)
{
    for (std::size_t i = 0; i < modelfile::kSectionCount; ++i) {
        const SectionInfo s = sectionAt(bytes, i);
        const std::uint32_t crc = crc32c::compute(
            bytes.data() + s.offset,
            static_cast<std::size_t>(s.size));
        patchU32At(bytes,
                   kOffSections + i * kSectionEntryBytes + 16, crc);
    }
    patchU32At(bytes, kOffHeaderCrc, 0);
    patchU32At(bytes, kOffHeaderCrc,
               crc32c::compute(bytes.data(), modelfile::headerBytes));
}

AssociativeMemory
makeModel(std::size_t dim, std::size_t classes,
          const StoreLayout &layout)
{
    Rng rng(dim * 31 + classes);
    AssociativeMemory am(dim);
    for (std::size_t id = 0; id < classes; ++id)
        am.store(Hypervector::random(dim, rng),
                 "label-" + std::to_string(id));
    am.setStoreLayout(layout);
    return am;
}

std::string
serializedModel(const StoreLayout &layout, bool withItems = true)
{
    const AssociativeMemory am = makeModel(250, 9, layout);
    modelfile::SaveOptions opts;
    const ItemMemory items(27, 250, 99);
    if (withItems)
        opts.items = &items;
    std::ostringstream out;
    modelfile::ModelWriter writer(out);
    writer.write(am, opts);
    return out.str();
}

std::string
tempFile(const std::string &name, const std::string &bytes)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    EXPECT_TRUE(static_cast<bool>(out)) << path;
    return path;
}

/** Expect a load failure whose message contains @p needle. */
void
expectLoadError(const std::string &path, const std::string &needle,
                bool verify = true)
{
    modelfile::ModelView::Options opts;
    opts.verifyChecksums = verify;
    try {
        modelfile::ModelView view(path, opts);
        ADD_FAILURE() << "no throw (wanted '" << needle << "')";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "wanted '" << needle << "', got: " << e.what();
    }
}

StoreLayout
slicedLayout()
{
    StoreLayout layout;
    layout.layout = RowLayout::Sliced;
    layout.shards = 3;
    layout.slicePrefix = 128;
    return layout;
}

TEST(ModelFileTest, RoundTripServesIdentically)
{
    for (const bool sliced : {false, true}) {
        const StoreLayout layout =
            sliced ? slicedLayout() : StoreLayout{};
        const AssociativeMemory am = makeModel(250, 9, layout);
        const std::string path = tempFile(
            "mf_roundtrip.hdc", serializedModel(layout));
        modelfile::ModelView view(path);
        ASSERT_EQ(view.classes(), am.size());
        ASSERT_EQ(view.dim(), am.dim());
        EXPECT_EQ(view.version(), modelfile::formatVersion);
        Rng rng(7);
        for (int q = 0; q < 32; ++q) {
            const Hypervector query = Hypervector::random(250, rng);
            const auto expect = am.search(query);
            const auto got = view.memory().search(query);
            EXPECT_EQ(got.classId, expect.classId);
            EXPECT_EQ(got.bestDistance, expect.bestDistance);
        }
        for (std::size_t id = 0; id < am.size(); ++id) {
            EXPECT_EQ(view.memory().labelOf(id), am.labelOf(id));
            EXPECT_EQ(view.memory().vectorOf(id), am.vectorOf(id));
        }
        std::remove(path.c_str());
    }
}

TEST(ModelFileTest, EveryTruncatedPrefixThrows)
{
    for (const bool sliced : {false, true}) {
        const std::string full = serializedModel(
            sliced ? slicedLayout() : StoreLayout{});
        for (std::size_t cut = 0; cut < full.size(); ++cut) {
            const std::string path = tempFile(
                "mf_truncated.hdc", full.substr(0, cut));
            EXPECT_THROW(
                {
                    try {
                        modelfile::ModelView view(path);
                    } catch (const std::runtime_error &) {
                        throw;
                    } catch (...) {
                        ADD_FAILURE()
                            << "non-runtime_error at cut " << cut;
                        throw;
                    }
                },
                std::runtime_error)
                << "cut at " << cut << " of " << full.size();
        }
    }
}

TEST(ModelFileTest, FlippedBitInEverySectionThrows)
{
    const std::string full = serializedModel(slicedLayout());
    for (std::size_t i = 0; i < modelfile::kSectionCount; ++i) {
        const SectionInfo s = sectionAt(full, i);
        ASSERT_GT(s.size, 0u) << modelfile::sectionName(i);
        // Flip one bit at the start, middle and end of the section.
        for (const std::uint64_t at :
             {s.offset, s.offset + s.size / 2,
              s.offset + s.size - 1}) {
            for (int bit = 0; bit < 8; ++bit) {
                std::string bytes = full;
                bytes[static_cast<std::size_t>(at)] =
                    static_cast<char>(
                        bytes[static_cast<std::size_t>(at)] ^
                        (1 << bit));
                const std::string path =
                    tempFile("mf_bitflip.hdc", bytes);
                expectLoadError(
                    path, std::string(modelfile::sectionName(i)) +
                              " section checksum mismatch at byte " +
                              std::to_string(s.offset));
            }
        }
    }
}

TEST(ModelFileTest, FlippedBitAnywhereInHeaderThrows)
{
    const std::string full = serializedModel(StoreLayout{});
    for (std::size_t at = 0; at < modelfile::headerBytes; ++at) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bytes = full;
            bytes[at] =
                static_cast<char>(bytes[at] ^ (1 << bit));
            const std::string path =
                tempFile("mf_headerflip.hdc", bytes);
            EXPECT_THROW(modelfile::ModelView view(path),
                         std::runtime_error)
                << "byte " << at << " bit " << bit;
        }
    }
}

TEST(ModelFileTest, BadMagicNamed)
{
    std::string bytes = serializedModel(StoreLayout{});
    bytes[0] = 'X';
    expectLoadError(tempFile("mf_magic.hdc", bytes), "bad magic");
}

TEST(ModelFileTest, UnsupportedVersionNamed)
{
    std::string bytes = serializedModel(StoreLayout{});
    patchU32At(bytes, kOffVersion, 2);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_version.hdc", bytes),
                    "unsupported version 2");
}

TEST(ModelFileTest, HeaderChecksumMismatchNamed)
{
    std::string bytes = serializedModel(StoreLayout{});
    // Flip a reserved-ish header byte without refreshing the CRC.
    bytes[68] = static_cast<char>(bytes[68] ^ 0x01);
    expectLoadError(tempFile("mf_headercrc.hdc", bytes),
                    "header checksum mismatch");
}

TEST(ModelFileTest, FileSizeFieldMismatchNamed)
{
    std::string bytes = serializedModel(StoreLayout{});
    patchU64At(bytes, kOffFileSize,
               readU64At(bytes, kOffFileSize) + 64);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_filesize.hdc", bytes),
                    "truncated file");
}

TEST(ModelFileTest, AppendedGarbageRejected)
{
    std::string bytes = serializedModel(StoreLayout{});
    bytes.append(64, '\0');
    expectLoadError(tempFile("mf_appended.hdc", bytes),
                    "truncated file");
}

TEST(ModelFileTest, TamperedSectionOffsetNamesSection)
{
    std::string bytes = serializedModel(StoreLayout{});
    const std::size_t entry =
        kOffSections + 2 * kSectionEntryBytes; // labels
    patchU64At(bytes, entry, readU64At(bytes, entry) + 64);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_sectionoff.hdc", bytes),
                    "section table corrupt: labels");
}

TEST(ModelFileTest, TamperedShardTableCaught)
{
    std::string bytes = serializedModel(slicedLayout());
    const SectionInfo table = sectionAt(bytes, 0);
    // Shard 1's firstRow (second 32-byte entry) off by one.
    const std::size_t firstRowAt =
        static_cast<std::size_t>(table.offset) + 32;
    patchU64At(bytes, firstRowAt,
               readU64At(bytes, firstRowAt) + 1);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_shard.hdc", bytes),
                    "shard table corrupt");
}

TEST(ModelFileTest, TamperedShardPointerCaught)
{
    std::string bytes = serializedModel(slicedLayout());
    const SectionInfo table = sectionAt(bytes, 0);
    // Shard 0's head offset pushed past the row words section.
    const std::size_t headAt =
        static_cast<std::size_t>(table.offset) + 16;
    patchU64At(bytes, headAt, readU64At(bytes, headAt) + (1 << 20));
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_shardptr.hdc", bytes),
                    "falls outside the row words section");
}

TEST(ModelFileTest, ImplausibleRowCountRejected)
{
    std::string bytes = serializedModel(StoreLayout{});
    patchU64At(bytes, kOffRows, 1ULL << 62);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_rowcount.hdc", bytes),
                    "implausible row count");
}

TEST(ModelFileTest, ShardRowWraparoundRejected)
{
    // Crafted shard table whose row counts wrap uint64 arithmetic:
    // shard 0 claims 2^60 rows (head/tail byte counts wrap to 0),
    // shard 1 claims 2^64 - 2^60 + 3 rows so `covered` wraps back
    // to 3, and shard 2 tops it up to the header's 9. Every legacy
    // check (contiguity, byte bounds, final sum) is satisfied; only
    // the overflow-safe rows-remaining check rejects it.
    std::string bytes = serializedModel(slicedLayout());
    const SectionInfo table = sectionAt(bytes, 0);
    const auto entry = [&](std::size_t s, std::size_t field) {
        return static_cast<std::size_t>(table.offset) + s * 32 +
               field * 8;
    };
    patchU64At(bytes, entry(0, 1), 1ULL << 60);
    patchU64At(bytes, entry(1, 0), 1ULL << 60);
    patchU64At(bytes, entry(1, 1), 0 - (1ULL << 60) + 3);
    patchU64At(bytes, entry(2, 0), 3);
    patchU64At(bytes, entry(2, 1), 6);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_shardwrap.hdc", bytes),
                    "shard table corrupt");
}

TEST(ModelFileTest, SectionSizeWraparoundRejected)
{
    // A first-section size of 2^64 - 64 wraps the running offset
    // back below the header; re-pointing the remaining sections at
    // the wrapped offsets and re-sizing the last one makes the
    // final sum land exactly on the file size. The overflow-safe
    // size bound must reject it before the checksum pass walks a
    // ~2^64-byte section.
    std::string bytes = serializedModel(StoreLayout{});
    const std::uint64_t fileSize = bytes.size();
    patchU64At(bytes,
               kOffSections + 0 * kSectionEntryBytes + 8,
               0 - std::uint64_t{64});
    std::uint64_t at = modelfile::headerBytes - 64;
    for (std::size_t i = 1; i < modelfile::kSectionCount; ++i) {
        const std::size_t e =
            kOffSections + i * kSectionEntryBytes;
        patchU64At(bytes, e, at);
        if (i + 1 == modelfile::kSectionCount)
            patchU64At(bytes, e + 8, fileSize - at);
        at += readU64At(bytes, e + 8);
    }
    ASSERT_EQ(at, fileSize);
    // Only the header CRC (which covers the section table) can be
    // refreshed: recomputing per-section CRCs would itself walk the
    // crafted ~2^64-byte section. The loader rejects during section
    // table parsing, before its checksum pass.
    patchU32At(bytes, kOffHeaderCrc, 0);
    patchU32At(bytes, kOffHeaderCrc,
               crc32c::compute(bytes.data(), modelfile::headerBytes));
    expectLoadError(tempFile("mf_sectionwrap.hdc", bytes),
                    "section table corrupt");
}

TEST(ModelFileTest, TamperedLabelCountCaught)
{
    std::string bytes = serializedModel(StoreLayout{});
    const SectionInfo labels = sectionAt(bytes, 2);
    const std::size_t countAt =
        static_cast<std::size_t>(labels.offset);
    patchU64At(bytes, countAt, readU64At(bytes, countAt) + 1);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_labelcount.hdc", bytes),
                    "labels section records");
}

TEST(ModelFileTest, TamperedLabelLengthCaught)
{
    std::string bytes = serializedModel(StoreLayout{});
    const SectionInfo labels = sectionAt(bytes, 2);
    // First label length (just after the count): far too large.
    const std::size_t lenAt =
        static_cast<std::size_t>(labels.offset) + 8;
    patchU64At(bytes, lenAt, 1ULL << 40);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_labellen.hdc", bytes),
                    "overruns its section");
}

TEST(ModelFileTest, TamperedItemMemoryDimCaught)
{
    std::string bytes = serializedModel(StoreLayout{});
    const SectionInfo items = sectionAt(bytes, 3);
    const std::size_t dimAt =
        static_cast<std::size_t>(items.offset) + 8;
    patchU64At(bytes, dimAt, 999);
    refreshChecksums(bytes);
    expectLoadError(tempFile("mf_itemdim.hdc", bytes),
                    "item memory dimension 999");
}

TEST(ModelFileTest, SkippedVerificationStillValidatesStructure)
{
    // verifyChecksums=false skips only the CRC pass; structural
    // validation (truncation, shard/label bounds) still rejects.
    const std::string full = serializedModel(slicedLayout());

    // A payload bit flip now loads -- that is the documented trade.
    {
        std::string bytes = full;
        const SectionInfo rows = sectionAt(bytes, 1);
        bytes[static_cast<std::size_t>(rows.offset)] =
            static_cast<char>(
                bytes[static_cast<std::size_t>(rows.offset)] ^ 1);
        const std::string path =
            tempFile("mf_noverify_flip.hdc", bytes);
        modelfile::ModelView::Options opts;
        opts.verifyChecksums = false;
        EXPECT_NO_THROW(modelfile::ModelView view(path, opts));
    }

    // Truncation and bad shard pointers still throw.
    expectLoadError(
        tempFile("mf_noverify_trunc.hdc",
                 full.substr(0, full.size() - 64)),
        "truncated file", /*verify=*/false);
    {
        std::string bytes = full;
        const SectionInfo table = sectionAt(bytes, 0);
        const std::size_t headAt =
            static_cast<std::size_t>(table.offset) + 16;
        patchU64At(bytes, headAt,
                   readU64At(bytes, headAt) + (1 << 20));
        refreshChecksums(bytes);
        expectLoadError(tempFile("mf_noverify_shard.hdc", bytes),
                        "falls outside", /*verify=*/false);
    }
}

TEST(ModelFileTest, MappedMemoryIsReadOnly)
{
    const std::string path = tempFile(
        "mf_readonly.hdc", serializedModel(StoreLayout{}));
    modelfile::ModelView view(path);
    ASSERT_TRUE(view.memory().mapped());
    Rng rng(1);
    EXPECT_THROW(view.memory().store(Hypervector::random(250, rng)),
                 std::logic_error);
    StoreLayout relay;
    relay.shards = 2;
    EXPECT_THROW(view.memory().setStoreLayout(relay),
                 std::logic_error);
    // The failed store must not have grown the label table.
    EXPECT_EQ(view.memory().size(), 9u);
    std::remove(path.c_str());
}

TEST(ModelFileTest, MoveTransfersTheMapping)
{
    const std::string path = tempFile(
        "mf_move.hdc", serializedModel(StoreLayout{}));
    modelfile::ModelView first(path);
    const std::uint32_t checksum = first.checksum();
    modelfile::ModelView second(std::move(first));
    EXPECT_EQ(second.checksum(), checksum);
    EXPECT_EQ(second.classes(), 9u);
    Rng rng(2);
    const Hypervector query = Hypervector::random(250, rng);
    EXPECT_NO_THROW(second.memory().search(query));
    std::remove(path.c_str());
}

TEST(ModelFileTest, SniffRoutesFormats)
{
    const std::string v1 = tempFile(
        "mf_sniff_v1.hdc", serializedModel(StoreLayout{}));
    EXPECT_TRUE(modelfile::sniff(v1));
    const std::string other =
        tempFile("mf_sniff_other.bin", "HDHAM\0\0\0legacyish");
    EXPECT_FALSE(modelfile::sniff(other));
    EXPECT_FALSE(modelfile::sniff("/nonexistent/nope.hdc"));
    const std::string shorty = tempFile("mf_sniff_short.bin", "HD");
    EXPECT_FALSE(modelfile::sniff(shorty));
}

TEST(ModelFileTest, MissingFileNamed)
{
    expectLoadError("/nonexistent/nope.hdc", "cannot open");
}

TEST(ModelFileTest, EmptyModelRoundTrips)
{
    AssociativeMemory am(128);
    std::ostringstream out;
    modelfile::ModelWriter writer(out);
    writer.write(am);
    const std::string path =
        tempFile("mf_empty.hdc", out.str());
    modelfile::ModelView view(path);
    EXPECT_EQ(view.classes(), 0u);
    EXPECT_EQ(view.dim(), 128u);
    EXPECT_FALSE(view.hasItemMemory());
    EXPECT_FALSE(view.hasLevelMemory());
    std::remove(path.c_str());
}

} // namespace

/**
 * @file
 * Unit tests for role-filler record encoding and analogy probing.
 */

#include <gtest/gtest.h>

#include "core/record.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::RecordEncoder;
using hdham::Rng;

class RecordTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t dim = 10000;
    Rng rng{42};

    Hypervector hv() { return Hypervector::random(dim, rng); }
};

TEST_F(RecordTest, EncodeRejectsEmpty)
{
    EXPECT_THROW(RecordEncoder::encode({}, rng),
                 std::invalid_argument);
}

TEST_F(RecordTest, SingleBindingIsExactlyRecoverable)
{
    const Hypervector role = hv(), filler = hv();
    const Hypervector record =
        RecordEncoder::encode({{role, filler}}, rng);
    EXPECT_EQ(RecordEncoder::probe(record, role), filler);
    EXPECT_EQ(RecordEncoder::probe(record, filler), role);
}

TEST_F(RecordTest, ProbeRecoversFillersApproximately)
{
    const Hypervector country = hv(), capital = hv(),
                      currency = hv();
    const Hypervector usa = hv(), washington = hv(), dollar = hv();
    const Hypervector record = RecordEncoder::encode(
        {{country, usa}, {capital, washington}, {currency, dollar}},
        rng);
    // The unbound probe is much closer to the filler than chance.
    const Hypervector probe =
        RecordEncoder::probe(record, currency);
    EXPECT_LT(probe.hamming(dollar), dim / 2 - 1000);
    EXPECT_NEAR(probe.hamming(washington), dim / 2.0, 400.0);
}

TEST_F(RecordTest, CleanupRetrievesTheRightItem)
{
    const Hypervector country = hv(), capital = hv(),
                      currency = hv();
    const Hypervector usa = hv(), washington = hv(), dollar = hv();
    const Hypervector record = RecordEncoder::encode(
        {{country, usa}, {capital, washington}, {currency, dollar}},
        rng);
    AssociativeMemory items(dim);
    items.store(usa, "usa");
    items.store(washington, "washington");
    items.store(dollar, "dollar");
    EXPECT_EQ(
        RecordEncoder::probeAndCleanup(record, country, items), 0u);
    EXPECT_EQ(
        RecordEncoder::probeAndCleanup(record, capital, items), 1u);
    EXPECT_EQ(
        RecordEncoder::probeAndCleanup(record, currency, items), 2u);
}

TEST_F(RecordTest, RolesAreRecoverableFromFillers)
{
    const Hypervector roleA = hv(), roleB = hv();
    const Hypervector fillA = hv(), fillB = hv();
    const Hypervector record = RecordEncoder::encode(
        {{roleA, fillA}, {roleB, fillB}}, rng);
    AssociativeMemory roles(dim);
    roles.store(roleA);
    roles.store(roleB);
    EXPECT_EQ(RecordEncoder::probeAndCleanup(record, fillA, roles),
              0u);
    EXPECT_EQ(RecordEncoder::probeAndCleanup(record, fillB, roles),
              1u);
}

TEST_F(RecordTest, DollarOfMexico)
{
    // The paper's reference [2]: "what is the dollar of Mexico?"
    const Hypervector country = hv(), capital = hv(),
                      currency = hv();
    const Hypervector usa = hv(), washington = hv(), dollar = hv();
    const Hypervector mexico = hv(), mexicoCity = hv(), peso = hv();

    const Hypervector usaRecord = RecordEncoder::encode(
        {{country, usa}, {capital, washington}, {currency, dollar}},
        rng);
    const Hypervector mexRecord = RecordEncoder::encode(
        {{country, mexico},
         {capital, mexicoCity},
         {currency, peso}},
        rng);

    AssociativeMemory items(dim);
    items.store(mexico, "mexico");
    items.store(mexicoCity, "mexico-city");
    const std::size_t pesoId = items.store(peso, "peso");

    EXPECT_EQ(RecordEncoder::analogy(usaRecord, dollar, mexRecord,
                                     items),
              pesoId);
}

TEST_F(RecordTest, ManyFieldRecordsStillResolve)
{
    std::vector<RecordEncoder::Binding> bindings;
    std::vector<Hypervector> fillers;
    AssociativeMemory cleanup(dim);
    for (int i = 0; i < 9; ++i) {
        bindings.emplace_back(hv(), hv());
        fillers.push_back(bindings.back().second);
        cleanup.store(fillers.back());
    }
    const Hypervector record = RecordEncoder::encode(bindings, rng);
    for (int i = 0; i < 9; ++i) {
        EXPECT_EQ(RecordEncoder::probeAndCleanup(
                      record, bindings[i].first, cleanup),
                  static_cast<std::size_t>(i))
            << "field " << i;
    }
}

} // namespace

/**
 * @file
 * CRC32C (Castagnoli) unit tests: the published RFC 3720 check
 * vectors pin the polynomial, reflection and inversion conventions;
 * the chaining tests pin the incremental-update contract the
 * two-pass model writer relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/crc32c.hh"
#include "core/random.hh"

namespace
{

namespace crc32c = hdham::crc32c;
using hdham::Rng;

TEST(Crc32cTest, Rfc3720CheckValue)
{
    // The canonical CRC32C check vector.
    const char digits[] = "123456789";
    EXPECT_EQ(crc32c::compute(digits, 9), 0xE3069283u);
}

TEST(Crc32cTest, Rfc3720IscsiVectors)
{
    // RFC 3720 appendix B.4 test patterns.
    unsigned char zeros[32] = {};
    EXPECT_EQ(crc32c::compute(zeros, sizeof(zeros)), 0x8A9136AAu);

    unsigned char ones[32];
    std::memset(ones, 0xFF, sizeof(ones));
    EXPECT_EQ(crc32c::compute(ones, sizeof(ones)), 0x62A8AB43u);

    unsigned char ascending[32];
    for (int i = 0; i < 32; ++i)
        ascending[i] = static_cast<unsigned char>(i);
    EXPECT_EQ(crc32c::compute(ascending, sizeof(ascending)),
              0x46DD794Eu);

    unsigned char descending[32];
    for (int i = 0; i < 32; ++i)
        descending[i] = static_cast<unsigned char>(31 - i);
    EXPECT_EQ(crc32c::compute(descending, sizeof(descending)),
              0x113FDB5Cu);
}

TEST(Crc32cTest, EmptyInputIsZero)
{
    EXPECT_EQ(crc32c::compute(nullptr, 0), 0u);
    EXPECT_EQ(crc32c::update(0, nullptr, 0), 0u);
}

TEST(Crc32cTest, ChainedUpdatesMatchOneShot)
{
    // update(update(0, a), b) == compute(a || b) at every split
    // point, including splits that leave unaligned heads and tails.
    Rng rng(0xC3C32CULL);
    std::vector<unsigned char> data(257);
    for (auto &byte : data)
        byte = static_cast<unsigned char>(rng.nextBelow(256));
    const std::uint32_t whole =
        crc32c::compute(data.data(), data.size());
    for (std::size_t split = 0; split <= data.size(); ++split) {
        const std::uint32_t head =
            crc32c::update(0, data.data(), split);
        const std::uint32_t chained = crc32c::update(
            head, data.data() + split, data.size() - split);
        EXPECT_EQ(chained, whole) << "split at " << split;
    }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip)
{
    const std::string text = "hyperdimensional associative memory";
    const std::uint32_t reference =
        crc32c::compute(text.data(), text.size());
    for (std::size_t bit = 0; bit < text.size() * 8; ++bit) {
        std::string flipped = text;
        flipped[bit / 8] =
            static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
        EXPECT_NE(crc32c::compute(flipped.data(), flipped.size()),
                  reference)
            << "bit " << bit;
    }
}

} // namespace

/**
 * @file
 * Unit tests for the hardware-counter layer (core/perf_counters):
 * tagged-unavailable propagation, the forced-failure and environment
 * switches, the metrics export contract, and the process memory /
 * residency probes.
 *
 * The suite must pass on every host class -- full perf support,
 * partial (software events only, the common container case), or none
 * (stub build, HDHAM_PERF=off rerun) -- so assertions about real
 * counter values are gated on availability, never assumed.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/perf_counters.hh"

namespace
{

namespace perf = hdham::perf;
namespace metrics = hdham::metrics;

/** Restores the forced-failure switch even when a test fails. */
struct ForcedUnavailable
{
    ForcedUnavailable() { perf::testing::forceUnavailable(true); }
    ~ForcedUnavailable() { perf::testing::forceUnavailable(false); }
};

/** Sets HDHAM_PERF for one scope, restoring the prior value. */
struct ScopedEnv
{
    explicit ScopedEnv(const char *value)
    {
        const char *old = std::getenv("HDHAM_PERF");
        hadOld = old != nullptr;
        if (hadOld)
            oldValue = old;
        ::setenv("HDHAM_PERF", value, 1);
    }
    ~ScopedEnv()
    {
        if (hadOld)
            ::setenv("HDHAM_PERF", oldValue.c_str(), 1);
        else
            ::unsetenv("HDHAM_PERF");
    }
    bool hadOld = false;
    std::string oldValue;
};

TEST(PerfSampleTest, DefaultIsFullyUnavailable)
{
    const perf::Sample s;
    for (std::size_t id = 0; id < perf::kCounterCount; ++id) {
        EXPECT_FALSE(s.available(id)) << id;
        EXPECT_EQ(s[id], perf::kUnavailable) << id;
    }
    EXPECT_FALSE(s.anyAvailable());
}

TEST(PerfSampleTest, CounterNamesAreStable)
{
    // These strings are schema: metrics "perf" keys, trace args and
    // event-log fields all use them.
    EXPECT_STREQ(perf::counterName(perf::kCycles), "cycles");
    EXPECT_STREQ(perf::counterName(perf::kInstructions),
                 "instructions");
    EXPECT_STREQ(perf::counterName(perf::kLlcMisses), "llc_misses");
    EXPECT_STREQ(perf::counterName(perf::kL1dMisses), "l1d_misses");
    EXPECT_STREQ(perf::counterName(perf::kBranchMisses),
                 "branch_misses");
    EXPECT_STREQ(perf::counterName(perf::kPageFaults),
                 "page_faults");
    EXPECT_STREQ(perf::counterName(perf::kCounterCount), "unknown");
}

TEST(PerfSampleTest, DeltaPropagatesUnavailability)
{
    perf::Sample before, after;
    before.v[perf::kCycles] = 100;
    after.v[perf::kCycles] = 150;
    // Instructions available only after, page faults only before.
    after.v[perf::kInstructions] = 70;
    before.v[perf::kPageFaults] = 3;
    const perf::Sample d = perf::delta(before, after);
    EXPECT_EQ(d[perf::kCycles], 50);
    EXPECT_EQ(d[perf::kInstructions], perf::kUnavailable);
    EXPECT_EQ(d[perf::kPageFaults], perf::kUnavailable);
    EXPECT_EQ(d[perf::kLlcMisses], perf::kUnavailable);
    EXPECT_TRUE(d.anyAvailable());
}

TEST(PerfStatusTest, StatusNamesAreStable)
{
    EXPECT_STREQ(perf::statusName(perf::Status::On), "on");
    EXPECT_STREQ(perf::statusName(perf::Status::Off), "off");
    EXPECT_STREQ(perf::statusName(perf::Status::Unavailable),
                 "unavailable");
}

TEST(PerfStatusTest, ForcedFailureWinsOverEverything)
{
    const ForcedUnavailable forced;
    EXPECT_EQ(perf::status(), perf::Status::Unavailable);
    EXPECT_FALSE(perf::available());
    const perf::Sample s = perf::threadSample();
    EXPECT_FALSE(s.anyAvailable());
}

TEST(PerfStatusTest, EnvironmentSwitchTurnsCountersOff)
{
    // The env is consulted on every status() call, so a scoped
    // setenv is enough -- no process restart needed.
    for (const char *value : {"off", "OFF", "0"}) {
        const ScopedEnv env(value);
        EXPECT_EQ(perf::status(), perf::Status::Off) << value;
        EXPECT_FALSE(perf::threadSample().anyAvailable()) << value;
    }
    // Any other value leaves the probe in charge.
    const ScopedEnv env("on");
    EXPECT_NE(perf::status(), perf::Status::Off);
}

TEST(PerfCountersTest, ThreadSampleMatchesStatus)
{
    const perf::Sample s = perf::threadSample();
    if (perf::status() == perf::Status::On) {
        // At least one event source opened; its reads are counts.
        EXPECT_TRUE(s.anyAvailable());
        for (std::size_t id = 0; id < perf::kCounterCount; ++id) {
            if (s.available(id)) {
                EXPECT_GE(s[id], 0) << perf::counterName(id);
            }
        }
    } else {
        EXPECT_FALSE(s.anyAvailable());
    }
}

TEST(PerfCountersTest, ScopedDeltaIsNonNegative)
{
    perf::ScopedDelta scoped;
    // Touch some memory so software counters have work to count.
    std::vector<int> sink(1 << 16, 1);
    long total = 0;
    for (const int v : sink)
        total += v;
    EXPECT_EQ(total, 1 << 16);
    const perf::Sample d = scoped.delta();
    for (std::size_t id = 0; id < perf::kCounterCount; ++id) {
        if (d.available(id)) {
            EXPECT_GE(d[id], 0) << perf::counterName(id);
        }
    }
    if (perf::status() != perf::Status::On) {
        EXPECT_FALSE(d.anyAvailable());
    }
}

TEST(PerfCountersTest, ProcessCountersDeltaIsNonNegative)
{
    perf::ProcessCounters workload;
    std::vector<int> sink(1 << 16, 2);
    long total = 0;
    for (const int v : sink)
        total += v;
    EXPECT_EQ(total, 2 << 16);
    const perf::Sample d = workload.delta();
    for (std::size_t id = 0; id < perf::kCounterCount; ++id) {
        if (d.available(id)) {
            EXPECT_GE(d[id], 0) << perf::counterName(id);
        }
    }
    if (perf::status() != perf::Status::On) {
        EXPECT_FALSE(d.anyAvailable());
    }
}

TEST(PerfExportTest, ExportsEveryCounterAndDerivedRates)
{
    perf::Sample measured;
    measured.v[perf::kCycles] = 1000;
    measured.v[perf::kInstructions] = 2000;
    measured.v[perf::kLlcMisses] = 10;
    measured.v[perf::kL1dMisses] = 20;
    // branch_misses stays unavailable; the tag must be exported.
    measured.v[perf::kPageFaults] = 5;

    metrics::Registry registry;
    perf::exportTo(registry, measured, 100);
    const metrics::Snapshot snap = registry.snapshot();

    EXPECT_DOUBLE_EQ(snap.perf.at("cycles"), 1000.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("instructions"), 2000.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("llc_misses"), 10.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("l1d_misses"), 20.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("branch_misses"), -1.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("page_faults"), 5.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("available"), 1.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("ipc"), 2.0);
    EXPECT_DOUBLE_EQ(snap.perf.at("llc_miss_per_row"), 0.1);
    EXPECT_DOUBLE_EQ(snap.perf.at("l1d_miss_per_row"), 0.2);
    EXPECT_DOUBLE_EQ(snap.perf.at("llc_miss_per_kinst"), 5.0);
    EXPECT_EQ(snap.info.at("perf"),
              perf::statusName(perf::status()));
}

TEST(PerfExportTest, UnavailableSampleExportsOnlyTags)
{
    metrics::Registry registry;
    perf::exportTo(registry, perf::Sample{}, 100);
    const metrics::Snapshot snap = registry.snapshot();
    for (std::size_t id = 0; id < perf::kCounterCount; ++id) {
        EXPECT_DOUBLE_EQ(snap.perf.at(perf::counterName(id)), -1.0);
    }
    EXPECT_DOUBLE_EQ(snap.perf.at("available"), 0.0);
    // No derived rate can be computed from tagged inputs.
    EXPECT_EQ(snap.perf.count("ipc"), 0u);
    EXPECT_EQ(snap.perf.count("llc_miss_per_row"), 0u);
    EXPECT_EQ(snap.perf.count("llc_miss_per_kinst"), 0u);
}

TEST(PerfMemoryTest, MemoryStatsReportRealUsage)
{
    const perf::MemoryStats stats = perf::memoryStats();
#if defined(__linux__)
    ASSERT_GT(stats.rssBytes, 0);
    ASSERT_GT(stats.peakRssBytes, 0);
    EXPECT_GE(stats.peakRssBytes, stats.rssBytes);
#else
    if (stats.rssBytes >= 0)
        EXPECT_GT(stats.rssBytes, 0);
#endif
}

TEST(PerfMemoryTest, ResidencyOfTouchedHeapIsResident)
{
    // Heap pages are part of the process mapping, so mincore can
    // answer for them; a just-written buffer must be resident.
    std::vector<unsigned char> buffer(1 << 16, 0xAB);
    const perf::Residency r =
        perf::residency(buffer.data(), buffer.size());
    if (r.mappedBytes < 0)
        GTEST_SKIP() << "mincore unsupported on this host";
    EXPECT_GE(r.mappedBytes,
              static_cast<std::int64_t>(buffer.size()));
    EXPECT_GT(r.residentBytes, 0);
    EXPECT_LE(r.residentBytes, r.mappedBytes);
}

TEST(PerfMemoryTest, ResidencyRejectsDegenerateRanges)
{
    const perf::Residency none = perf::residency(nullptr, 4096);
    EXPECT_EQ(none.residentBytes, perf::kUnavailable);
    int x = 0;
    const perf::Residency empty = perf::residency(&x, 0);
    EXPECT_EQ(empty.residentBytes, perf::kUnavailable);
}

} // namespace

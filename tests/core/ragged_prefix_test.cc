/**
 * @file
 * Regression suite for ragged prefixes: dimensions with D % 64 != 0
 * and scan/stage boundaries that end inside a 64-bit word. The
 * staged A-HAM sweep once assumed word-aligned stage boundaries;
 * these tests pin the masked-boundary handling everywhere a prefix
 * is not a multiple of the word size.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/packed_rows.hh"
#include "core/random.hh"
#include "ham/a_ham.hh"
#include "ham/d_ham.hh"

namespace
{

using hdham::Hypervector;
using hdham::PackedRows;
using hdham::Rng;

TEST(RaggedPrefixTest, StagePrefixDistancesMatchPrefixOracle)
{
    Rng rng(21);
    // Ragged dimensions and stage boundaries chosen to land inside
    // words (none of these ends is a multiple of 64).
    for (std::size_t dim : {130u, 1000u, 10007u}) {
        PackedRows rows(dim);
        std::vector<Hypervector> stored;
        for (std::size_t r = 0; r < 6; ++r) {
            stored.push_back(Hypervector::random(dim, rng));
            rows.append(stored.back());
        }
        const Hypervector query = Hypervector::random(dim, rng);

        for (std::size_t stages : {1u, 3u, 7u, 13u}) {
            const std::size_t width = (dim + stages - 1) / stages;
            std::vector<std::size_t> stageEnds;
            for (std::size_t s = 0; s < stages; ++s)
                stageEnds.push_back(
                    std::min((s + 1) * width, dim));

            std::vector<std::size_t> got;
            for (std::size_t r = 0; r < rows.rows(); ++r) {
                rows.stagePrefixDistances(r, query, stageEnds, got);
                ASSERT_EQ(got.size(), stages);
                // Oracle: difference of cumulative prefix counts.
                std::size_t prev = 0;
                for (std::size_t s = 0; s < stages; ++s) {
                    const std::size_t cum =
                        stored[r].hammingPrefix(query, stageEnds[s]);
                    EXPECT_EQ(got[s], cum - prev)
                        << "dim " << dim << " stages " << stages
                        << " stage " << s;
                    prev = cum;
                }
            }
        }
    }
}

TEST(RaggedPrefixTest, PackedScanRaggedPrefixMatchesOracle)
{
    Rng rng(22);
    const std::size_t dim = 10007;
    PackedRows rows(dim);
    std::vector<Hypervector> stored;
    for (std::size_t r = 0; r < 10; ++r) {
        stored.push_back(Hypervector::random(dim, rng));
        rows.append(stored.back());
    }
    for (std::size_t prefix : {1u, 63u, 65u, 7000u, 10007u}) {
        const Hypervector query = Hypervector::random(dim, rng);
        std::size_t bestIdx = 0, bestDist = dim + 1;
        for (std::size_t r = 0; r < rows.rows(); ++r) {
            const std::size_t d =
                stored[r].hammingPrefix(query, prefix);
            if (d < bestDist) {
                bestDist = d;
                bestIdx = r;
            }
        }
        std::size_t got = 0;
        EXPECT_EQ(rows.nearest(query, prefix, &got), bestIdx)
            << "prefix " << prefix;
        EXPECT_EQ(got, bestDist) << "prefix " << prefix;
    }
}

TEST(RaggedPrefixTest, DHamRaggedSampledDimMatchesOracle)
{
    // d = 7000 is not word-aligned (7000 % 64 == 24): the sampled
    // scan must mask the boundary word, not round it.
    Rng rng(23);
    hdham::ham::DHamConfig cfg;
    cfg.dim = 10000;
    cfg.sampledDim = 7000;
    hdham::ham::DHam ham(cfg);
    std::vector<Hypervector> stored;
    for (std::size_t r = 0; r < 8; ++r) {
        stored.push_back(Hypervector::random(cfg.dim, rng));
        ham.store(stored[r]);
    }
    for (int q = 0; q < 8; ++q) {
        Hypervector query = stored[static_cast<std::size_t>(q)];
        query.injectErrors(cfg.dim / 20, rng);
        std::size_t bestIdx = 0, bestDist = cfg.dim + 1;
        for (std::size_t r = 0; r < stored.size(); ++r) {
            const std::size_t d =
                stored[r].hammingPrefix(query, cfg.sampledDim);
            if (d < bestDist) {
                bestDist = d;
                bestIdx = r;
            }
        }
        const auto result = ham.search(query);
        EXPECT_EQ(result.classId, bestIdx);
        EXPECT_EQ(result.reportedDistance, bestDist);
    }
}

TEST(RaggedPrefixTest, AHamRaggedDimensionClassifies)
{
    // A ragged dimension with stage boundaries inside words: the
    // staged sweep must still attribute every bit to exactly one
    // stage, so a near-duplicate query lands on its prototype and
    // the reported distance is the true full-width distance.
    Rng rng(24);
    hdham::ham::AHamConfig cfg;
    cfg.dim = 1000; // 1000 % 64 == 40: ragged tail word
    cfg.stages = 7; // width 143: every boundary inside a word
    // Near-ideal analog path so the comparison is deterministic.
    cfg.ltaBits = 30;
    cfg.mirrorBeta = 0.0;
    cfg.current.stabilizerSlope = 0.0;
    cfg.variation = hdham::circuit::VariationParams{1e-3, 0.0};
    hdham::ham::AHam ham(cfg);
    std::vector<Hypervector> stored;
    for (std::size_t r = 0; r < 5; ++r) {
        stored.push_back(Hypervector::random(cfg.dim, rng));
        ham.store(stored[r]);
    }
    for (std::size_t r = 0; r < stored.size(); ++r) {
        const auto result = ham.search(stored[r]);
        EXPECT_EQ(result.classId, r);
        EXPECT_EQ(result.reportedDistance, 0u);
    }
}

} // namespace

/**
 * @file
 * Tests for the shared JSON helpers (core/json.hh): deterministic
 * number/string writers and the recursive-descent parser that
 * bench_gate and the schema tests rely on.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/json.hh"

namespace
{

using namespace hdham;

std::string
numberText(double value)
{
    std::ostringstream out;
    json::writeNumber(out, value);
    return out.str();
}

std::string
escapedText(const std::string &s)
{
    std::ostringstream out;
    json::writeEscaped(out, s);
    return out.str();
}

TEST(JsonWriterTest, IntegersPrintExactly)
{
    EXPECT_EQ(numberText(0), "0");
    EXPECT_EQ(numberText(-3), "-3");
    EXPECT_EQ(numberText(1e15), "1000000000000000");
    EXPECT_EQ(numberText(65536), "65536");
}

TEST(JsonWriterTest, NonFiniteRendersAsZero)
{
    EXPECT_EQ(numberText(std::numeric_limits<double>::infinity()),
              "0");
    EXPECT_EQ(numberText(std::numeric_limits<double>::quiet_NaN()),
              "0");
}

TEST(JsonWriterTest, FractionsRoundTrip)
{
    const double value = 0.1 + 0.2;
    const json::Value parsed = json::parse(numberText(value));
    EXPECT_DOUBLE_EQ(parsed.asNumber(), value);
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(escapedText("plain"), "\"plain\"");
    EXPECT_EQ(escapedText("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(escapedText("line\nbreak\ttab"),
              "\"line\\nbreak\\ttab\"");
    EXPECT_EQ(escapedText(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonParserTest, ParsesScalars)
{
    EXPECT_TRUE(json::parse("null").isNull());
    EXPECT_TRUE(json::parse("true").asBool());
    EXPECT_FALSE(json::parse("false").asBool());
    EXPECT_DOUBLE_EQ(json::parse("-12.5e2").asNumber(), -1250.0);
    EXPECT_EQ(json::parse("\"hi\"").asString(), "hi");
}

TEST(JsonParserTest, ParsesNestedStructures)
{
    const json::Value doc = json::parse(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "a": 9})");
    ASSERT_TRUE(doc.isObject());
    const auto &items = doc.at("a").items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_DOUBLE_EQ(items[1].asNumber(), 2.0);
    EXPECT_EQ(items[2].at("b").asString(), "c");
    EXPECT_TRUE(doc.at("d").at("e").isNull());
    // Duplicate keys: find returns the first, members keeps both.
    EXPECT_EQ(doc.at("a").items().size(), 3u);
    EXPECT_EQ(doc.members().size(), 3u);
    EXPECT_FALSE(doc.has("zzz"));
    EXPECT_EQ(doc.find("zzz"), nullptr);
}

TEST(JsonParserTest, DecodesEscapesAndSurrogatePairs)
{
    const json::Value v =
        json::parse(R"("a\u00e9\n\ud83d\ude00b")");
    // U+00E9 is two UTF-8 bytes, U+1F600 four.
    EXPECT_EQ(v.asString(),
              std::string("a\xc3\xa9\n\xf0\x9f\x98\x80"
                          "b"));
}

TEST(JsonParserTest, RejectsMalformedInput)
{
    EXPECT_THROW(json::parse(""), std::runtime_error);
    EXPECT_THROW(json::parse("{"), std::runtime_error);
    EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(json::parse("12 34"), std::runtime_error);
    EXPECT_THROW(json::parse("{'single': 1}"), std::runtime_error);
    EXPECT_THROW(json::parse("nul"), std::runtime_error);
}

TEST(JsonParserTest, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 300; ++i)
        deep += '[';
    EXPECT_THROW(json::parse(deep), std::runtime_error);
}

TEST(JsonParserTest, TypeMismatchesThrow)
{
    const json::Value v = json::parse("[1]");
    EXPECT_THROW(v.asNumber(), std::runtime_error);
    EXPECT_THROW(v.asString(), std::runtime_error);
    EXPECT_THROW(v.members(), std::runtime_error);
    EXPECT_THROW(v.at("k"), std::runtime_error);
    EXPECT_THROW(json::parse("3").items(), std::runtime_error);
}

} // namespace

/**
 * @file
 * hdham.model.v1 format freeze: re-serializing each fixture recipe
 * (tests/fixtures/model_fixture.hh) must reproduce the committed
 * golden file in tests/data/ byte for byte. A failure here means the
 * writer's output drifted -- that is a format break, and the fix is
 * to bump modelfile::formatVersion and add new fixtures, never to
 * regenerate the old ones in place.
 *
 * The committed files double as cross-version readers' ground truth:
 * the mmap view over each golden file must answer queries
 * bit-identically to the model rebuilt from the recipe, and to the
 * legacy serializer's round trip of the same model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/assoc_memory.hh"
#include "core/item_memory.hh"
#include "core/model_file.hh"
#include "core/random.hh"
#include "core/serialize.hh"
#include "fixtures/model_fixture.hh"

#ifndef HDHAM_TEST_DATA_DIR
#error "HDHAM_TEST_DATA_DIR must point at tests/data"
#endif

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::ItemMemory;
using hdham::Rng;
namespace modelfile = hdham::modelfile;
namespace serialize = hdham::serialize;
namespace testfix = hdham::testfix;

std::string
goldenPath(const testfix::FixtureSpec &spec)
{
    return std::string(HDHAM_TEST_DATA_DIR) + "/" + spec.file;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** First differing byte offset, or npos when equal. */
std::size_t
firstDiff(const std::string &a, const std::string &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return i;
    return a.size() == b.size() ? std::string::npos : n;
}

TEST(ModelFormatGoldenTest, ReserializationIsByteExact)
{
    for (const auto &spec : testfix::fixtureSpecs()) {
        const std::string committed = readFile(goldenPath(spec));
        ASSERT_FALSE(committed.empty()) << spec.file;
        std::ostringstream out;
        testfix::writeFixture(out, spec);
        const std::string rebuilt = out.str();
        EXPECT_EQ(rebuilt.size(), committed.size()) << spec.file;
        EXPECT_EQ(firstDiff(rebuilt, committed), std::string::npos)
            << spec.file << ": writer output drifted at byte "
            << firstDiff(rebuilt, committed)
            << " -- bump modelfile::formatVersion instead of "
               "regenerating the fixture";
    }
}

TEST(ModelFormatGoldenTest, GoldenFilesServeBitIdentically)
{
    for (const auto &spec : testfix::fixtureSpecs()) {
        modelfile::ModelView view(goldenPath(spec));
        const AssociativeMemory reference =
            testfix::buildFixtureMemory(spec);
        ASSERT_EQ(view.dim(), spec.dim) << spec.file;
        ASSERT_EQ(view.classes(), spec.classes) << spec.file;
        EXPECT_EQ(view.layout().layout, spec.layout.layout)
            << spec.file;
        Rng rng(0x601DULL);
        for (int q = 0; q < 48; ++q) {
            const Hypervector query =
                Hypervector::random(spec.dim, rng);
            const auto want = reference.search(query);
            const auto got = view.memory().search(query);
            EXPECT_EQ(got.classId, want.classId)
                << spec.file << " query " << q;
            EXPECT_EQ(got.bestDistance, want.bestDistance)
                << spec.file << " query " << q;
        }
        for (std::size_t id = 0; id < spec.classes; ++id) {
            EXPECT_EQ(view.memory().labelOf(id),
                      testfix::fixtureLabel(id))
                << spec.file;
            EXPECT_EQ(view.memory().vectorOf(id),
                      reference.vectorOf(id))
                << spec.file << " class " << id;
        }
    }
}

TEST(ModelFormatGoldenTest, EmbeddedItemMemoryMatchesRecipe)
{
    for (const auto &spec : testfix::fixtureSpecs()) {
        if (!spec.withItems)
            continue;
        modelfile::ModelView view(goldenPath(spec));
        ASSERT_TRUE(view.hasItemMemory()) << spec.file;
        const ItemMemory want = testfix::buildFixtureItems(spec);
        const ItemMemory got = view.itemMemory();
        ASSERT_EQ(got.size(), want.size()) << spec.file;
        ASSERT_EQ(got.dim(), want.dim()) << spec.file;
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i], want[i])
                << spec.file << " symbol " << i;
    }
}

TEST(ModelFormatGoldenTest, LegacyConversionAgreesWithGolden)
{
    // The legacy serializer round trip of the same recipe must agree
    // with the v1 mmap view query for query: conversion between the
    // formats (hdham save) may never change an answer.
    for (const auto &spec : testfix::fixtureSpecs()) {
        const AssociativeMemory model =
            testfix::buildFixtureMemory(spec);
        const std::string legacyFile =
            ::testing::TempDir() + "golden_legacy_" + spec.file;
        serialize::saveMemory(legacyFile, model);
        const AssociativeMemory legacy =
            serialize::loadMemory(legacyFile);
        modelfile::ModelView view(goldenPath(spec));
        Rng rng(0x1E6ACULL);
        for (int q = 0; q < 32; ++q) {
            const Hypervector query =
                Hypervector::random(spec.dim, rng);
            const auto viaLegacy = legacy.search(query);
            const auto viaMap = view.memory().search(query);
            EXPECT_EQ(viaMap.classId, viaLegacy.classId)
                << spec.file << " query " << q;
            EXPECT_EQ(viaMap.bestDistance, viaLegacy.bestDistance)
                << spec.file << " query " << q;
        }
        std::remove(legacyFile.c_str());
    }
}

} // namespace

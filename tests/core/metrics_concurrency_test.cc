/**
 * @file
 * Concurrency tests for the metrics subsystem: counters must be
 * EXACT -- not approximate -- when searchBatch scans with multiple
 * worker threads, and when several batches run concurrently against
 * one shared sink. Built with HDHAM_SANITIZE=thread these tests also
 * prove the collection path is race-free.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/hypervector.hh"
#include "core/metrics.hh"
#include "core/random.hh"
#include "ham/a_ham.hh"
#include "ham/d_ham.hh"
#include "ham/r_ham.hh"

namespace
{

using namespace hdham;

constexpr std::size_t kDim = 512;
constexpr std::size_t kClasses = 12;
constexpr std::size_t kQueries = 64;

std::vector<Hypervector>
makeQueries(std::size_t count, Rng &rng)
{
    std::vector<Hypervector> queries;
    queries.reserve(count);
    for (std::size_t q = 0; q < count; ++q)
        queries.push_back(Hypervector::random(kDim, rng));
    return queries;
}

TEST(MetricsConcurrencyTest, SoftwareBatchCountersExactPerThreadCount)
{
    Rng rng(101);
    AssociativeMemory am(kDim);
    for (std::size_t c = 0; c < kClasses; ++c)
        am.store(Hypervector::random(kDim, rng));
    const auto queries = makeQueries(kQueries, rng);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        metrics::QueryMetrics sink;
        am.attachMetrics(&sink);
        am.searchBatch(queries, threads);
        am.attachMetrics(nullptr);
        EXPECT_EQ(sink.queries.value(), kQueries) << threads;
        EXPECT_EQ(sink.rowsScanned.value(), kQueries * kClasses)
            << threads;
        EXPECT_EQ(sink.batches.value(), 1u) << threads;
        EXPECT_EQ(sink.batchLatencyUs.summary().count, 1u)
            << threads;
    }
}

TEST(MetricsConcurrencyTest, DHamCountersExactPerThreadCount)
{
    Rng rng(102);
    ham::DHamConfig cfg;
    cfg.dim = kDim;
    ham::DHam dham(cfg);
    for (std::size_t c = 0; c < kClasses; ++c)
        dham.store(Hypervector::random(kDim, rng));
    const auto queries = makeQueries(kQueries, rng);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        metrics::QueryMetrics sink;
        dham.attachMetrics(&sink);
        dham.searchBatch(queries, threads);
        dham.attachMetrics(nullptr);
        EXPECT_EQ(sink.queries.value(), kQueries) << threads;
        EXPECT_EQ(sink.rowsScanned.value(), kQueries * kClasses)
            << threads;
        EXPECT_EQ(sink.bitsSampled.value(),
                  kQueries * cfg.effectiveDim())
            << threads;
    }
}

TEST(MetricsConcurrencyTest, RHamStochasticCountersThreadInvariant)
{
    // R-HAM sensing is stochastic, but its noise comes from per-query
    // counter-derived substreams, so even sa_fires must be identical
    // for every thread count when the design is reseeded.
    std::vector<std::uint64_t> saFires;
    std::vector<std::uint64_t> blocksSensed;
    for (const std::size_t threads : {1u, 2u, 8u}) {
        Rng rng(103);
        ham::RHamConfig cfg;
        cfg.dim = kDim;
        cfg.overscaledBlocks = cfg.totalBlocks() / 2;
        ham::RHam rham(cfg);
        for (std::size_t c = 0; c < kClasses; ++c)
            rham.store(Hypervector::random(kDim, rng));
        const auto queries = makeQueries(kQueries, rng);

        metrics::QueryMetrics sink;
        rham.attachMetrics(&sink);
        rham.searchBatch(queries, threads);
        EXPECT_EQ(sink.queries.value(), kQueries) << threads;
        EXPECT_EQ(sink.blocksSensed.value(),
                  kQueries * kClasses * cfg.activeBlocks())
            << threads;
        saFires.push_back(sink.saFires.value());
        blocksSensed.push_back(sink.blocksSensed.value());
    }
    EXPECT_EQ(saFires[0], saFires[1]);
    EXPECT_EQ(saFires[0], saFires[2]);
    EXPECT_EQ(blocksSensed[0], blocksSensed[1]);
    EXPECT_EQ(blocksSensed[0], blocksSensed[2]);
    EXPECT_GT(saFires[0], 0u);
}

TEST(MetricsConcurrencyTest, AHamCountersExactPerThreadCount)
{
    Rng rng(104);
    ham::AHamConfig cfg;
    cfg.dim = kDim;
    ham::AHam aham(cfg);
    for (std::size_t c = 0; c < kClasses; ++c)
        aham.store(Hypervector::random(kDim, rng));
    const auto queries = makeQueries(kQueries, rng);

    for (const std::size_t threads : {1u, 2u, 8u}) {
        metrics::QueryMetrics sink;
        aham.attachMetrics(&sink);
        aham.searchBatch(queries, threads);
        aham.attachMetrics(nullptr);
        EXPECT_EQ(sink.queries.value(), kQueries) << threads;
        EXPECT_EQ(sink.stagesRun.value(),
                  kQueries * cfg.effectiveStages())
            << threads;
        EXPECT_EQ(sink.ltaComparisons.value(),
                  kQueries * (kClasses - 1))
            << threads;
    }
}

TEST(MetricsConcurrencyTest, SharedSinkAcrossConcurrentBatches)
{
    // Several caller threads, each firing multi-threaded batches into
    // ONE shared sink: totals must still be exact. This is the case
    // TSan scrutinizes hardest.
    Rng rng(105);
    AssociativeMemory am(kDim);
    for (std::size_t c = 0; c < kClasses; ++c)
        am.store(Hypervector::random(kDim, rng));
    const auto queries = makeQueries(kQueries, rng);

    metrics::QueryMetrics sink;
    am.attachMetrics(&sink);
    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kRepeats = 3;
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t t = 0; t < kCallers; ++t) {
        callers.emplace_back([&am, &queries] {
            for (std::size_t r = 0; r < kRepeats; ++r)
                am.searchBatch(queries, 2);
        });
    }
    for (std::thread &caller : callers)
        caller.join();
    am.attachMetrics(nullptr);

    constexpr std::uint64_t batches = kCallers * kRepeats;
    EXPECT_EQ(sink.batches.value(), batches);
    EXPECT_EQ(sink.queries.value(), batches * kQueries);
    EXPECT_EQ(sink.rowsScanned.value(),
              batches * kQueries * kClasses);
    EXPECT_EQ(sink.batchLatencyUs.summary().count, batches);
}

TEST(MetricsConcurrencyTest, SharedSinkAcrossDesigns)
{
    // One sink aggregating two designs queried from two threads:
    // per-design contributions must merge without loss.
    Rng rng(106);
    ham::DHamConfig dcfg;
    dcfg.dim = kDim;
    ham::DHam dham(dcfg);
    ham::AHamConfig acfg;
    acfg.dim = kDim;
    ham::AHam aham(acfg);
    for (std::size_t c = 0; c < kClasses; ++c) {
        const Hypervector hv = Hypervector::random(kDim, rng);
        dham.store(hv);
        aham.store(hv);
    }
    const auto queries = makeQueries(kQueries, rng);

    metrics::QueryMetrics sink;
    dham.attachMetrics(&sink);
    aham.attachMetrics(&sink);
    std::thread dThread([&] { dham.searchBatch(queries, 2); });
    std::thread aThread([&] { aham.searchBatch(queries, 2); });
    dThread.join();
    aThread.join();

    EXPECT_EQ(sink.queries.value(), 2 * kQueries);
    EXPECT_EQ(sink.batches.value(), 2u);
    EXPECT_EQ(sink.bitsSampled.value(),
              kQueries * dcfg.effectiveDim());
    EXPECT_EQ(sink.ltaComparisons.value(),
              kQueries * (kClasses - 1));
    EXPECT_EQ(sink.batchLatencyUs.summary().count, 2u);
}

} // namespace

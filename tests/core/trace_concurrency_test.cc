/**
 * @file
 * Concurrency tests for span tracing: an 8-thread searchBatch under
 * an active tracer must record one batch span, one chunk span per
 * worker chunk across at least two distinct thread tracks, and
 * propagate the batch scope into every worker. Labeled tier1 so the
 * check-tsan / check-asan targets run it under the sanitizers.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/random.hh"
#include "core/trace.hh"

namespace
{

using namespace hdham;

TEST(TraceConcurrencyTest, BatchSearchSpansAcrossWorkers)
{
    constexpr std::size_t kDim = 512;
    constexpr std::size_t kClasses = 16;
    constexpr std::size_t kQueries = 64;
    constexpr std::size_t kThreads = 8;

    Rng rng(7);
    AssociativeMemory am(kDim);
    for (std::size_t c = 0; c < kClasses; ++c)
        am.store(Hypervector::random(kDim, rng));
    std::vector<Hypervector> queries;
    queries.reserve(kQueries);
    for (std::size_t q = 0; q < kQueries; ++q)
        queries.push_back(Hypervector::random(kDim, rng));

    trace::Tracer tracer;
    trace::setActive(&tracer);
    am.searchBatch(queries, kThreads);
    trace::setActive(nullptr);

    EXPECT_EQ(tracer.droppedEvents(), 0u);

    trace::Event batchEvent;
    std::size_t batchCount = 0;
    std::vector<std::pair<std::uint32_t, trace::Event>> chunks;
    for (const auto &[track, event] : tracer.events()) {
        const std::string name = event.name;
        if (name == "am.batch") {
            batchEvent = event;
            ++batchCount;
        } else if (name == "am.chunk") {
            chunks.emplace_back(track, event);
        }
    }
    ASSERT_EQ(batchCount, 1u);
    ASSERT_EQ(chunks.size(), kThreads);

    // The batch opened a real scope and every chunk inherited it.
    EXPECT_NE(batchEvent.scope, 0u);
    std::set<std::uint32_t> tracks;
    for (const auto &[track, chunk] : chunks) {
        tracks.insert(track);
        EXPECT_EQ(chunk.scope, batchEvent.scope);
        // Chunks run inside the batch span's lifetime.
        EXPECT_GE(chunk.startUs, batchEvent.startUs);
        EXPECT_LE(chunk.startUs + chunk.durUs,
                  batchEvent.startUs + batchEvent.durUs + 1e-6);
    }
    EXPECT_GE(tracks.size(), 2u);
    EXPECT_EQ(tracer.threadsSeen(), kThreads);

    // Worker-thread chunks are scope members, not children of the
    // caller's span stack: their depth restarts at 0. The caller's
    // own chunk nests under the batch span (depth 1).
    for (const auto &[track, chunk] : chunks)
        EXPECT_LE(chunk.depth, 1u);
}

TEST(TraceConcurrencyTest, RepeatedBatchesReuseThreadCaches)
{
    constexpr std::size_t kDim = 256;
    Rng rng(21);
    AssociativeMemory am(kDim);
    for (std::size_t c = 0; c < 8; ++c)
        am.store(Hypervector::random(kDim, rng));
    std::vector<Hypervector> queries;
    for (std::size_t q = 0; q < 32; ++q)
        queries.push_back(Hypervector::random(kDim, rng));

    trace::Tracer tracer;
    trace::setActive(&tracer);
    for (int round = 0; round < 4; ++round)
        am.searchBatch(queries, 4);
    trace::setActive(nullptr);

    std::size_t batches = 0;
    std::set<std::uint64_t> scopes;
    for (const auto &[track, event] : tracer.events()) {
        if (std::string(event.name) == "am.batch") {
            ++batches;
            scopes.insert(event.scope);
        }
    }
    EXPECT_EQ(batches, 4u);
    // Each batch ran under its own scope.
    EXPECT_EQ(scopes.size(), 4u);
}

} // namespace

/**
 * @file
 * Unit tests for trained-model serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/random.hh"
#include "core/serialize.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;
namespace serialize = hdham::serialize;

TEST(SerializeTest, HypervectorRoundTrip)
{
    Rng rng(1);
    for (std::size_t dim : {1u, 63u, 64u, 65u, 1000u, 10000u}) {
        const Hypervector hv = Hypervector::random(dim, rng);
        std::stringstream stream;
        serialize::writeHypervector(stream, hv);
        EXPECT_EQ(serialize::readHypervector(stream), hv)
            << "dim " << dim;
    }
}

TEST(SerializeTest, MemoryRoundTrip)
{
    Rng rng(2);
    AssociativeMemory am(512);
    for (int c = 0; c < 21; ++c) {
        am.store(Hypervector::random(512, rng),
                 "class" + std::to_string(c));
    }
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const AssociativeMemory loaded = serialize::readMemory(stream);
    ASSERT_EQ(loaded.size(), am.size());
    ASSERT_EQ(loaded.dim(), am.dim());
    for (std::size_t id = 0; id < am.size(); ++id) {
        EXPECT_EQ(loaded.vectorOf(id), am.vectorOf(id));
        EXPECT_EQ(loaded.labelOf(id), am.labelOf(id));
    }
}

TEST(SerializeTest, EmptyMemoryRoundTrip)
{
    AssociativeMemory am(128);
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const AssociativeMemory loaded = serialize::readMemory(stream);
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.dim(), 128u);
}

TEST(SerializeTest, LoadedMemorySearchesIdentically)
{
    Rng rng(3);
    AssociativeMemory am(1024);
    for (int c = 0; c < 8; ++c)
        am.store(Hypervector::random(1024, rng));
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const AssociativeMemory loaded = serialize::readMemory(stream);
    for (int q = 0; q < 20; ++q) {
        const Hypervector query = Hypervector::random(1024, rng);
        EXPECT_EQ(loaded.search(query).classId,
                  am.search(query).classId);
    }
}

TEST(SerializeTest, RejectsBadMagic)
{
    std::stringstream stream;
    stream << "NOTHDHAMxxxxxxxxxxxxxxxx";
    EXPECT_THROW(serialize::readMemory(stream), std::runtime_error);
}

TEST(SerializeTest, RejectsTruncation)
{
    Rng rng(4);
    AssociativeMemory am(256);
    am.store(Hypervector::random(256, rng), "x");
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const std::string full = stream.str();
    for (const std::size_t cut :
         {std::size_t{4}, std::size_t{10}, full.size() / 2,
          full.size() - 3}) {
        std::stringstream truncated(full.substr(0, cut));
        EXPECT_THROW(serialize::readMemory(truncated),
                     std::runtime_error)
            << "cut at " << cut;
    }
}

TEST(SerializeTest, RejectsWrongVersion)
{
    Rng rng(5);
    AssociativeMemory am(64);
    am.store(Hypervector::random(64, rng));
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    std::string bytes = stream.str();
    bytes[8] = 99; // corrupt the version field
    std::stringstream corrupted(bytes);
    EXPECT_THROW(serialize::readMemory(corrupted),
                 std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip)
{
    Rng rng(6);
    AssociativeMemory am(300);
    am.store(Hypervector::random(300, rng), "english");
    am.store(Hypervector::random(300, rng), "german");
    const std::string path = ::testing::TempDir() + "hdham_am.bin";
    serialize::saveMemory(path, am);
    const AssociativeMemory loaded = serialize::loadMemory(path);
    EXPECT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.labelOf(1), "german");
    EXPECT_EQ(loaded.vectorOf(0), am.vectorOf(0));
    std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileThrows)
{
    EXPECT_THROW(serialize::loadMemory("/nonexistent/nope.bin"),
                 std::runtime_error);
}

TEST(SerializeTest, EveryStrictPrefixThrows)
{
    // Exhaustive truncation fuzz: a valid model file cut at ANY byte
    // boundary must raise std::runtime_error -- never crash, never
    // silently yield a partial memory. Covers cuts inside the magic,
    // the header fields, labels and hypervector words.
    Rng rng(7);
    AssociativeMemory am(130); // non-word-aligned dimensionality
    am.store(Hypervector::random(130, rng), "first");
    am.store(Hypervector::random(130, rng), "second label");
    am.store(Hypervector::random(130, rng), "");
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const std::string full = stream.str();
    ASSERT_GT(full.size(), 8u);

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        std::stringstream truncated(full.substr(0, cut));
        EXPECT_THROW(
            {
                try {
                    serialize::readMemory(truncated);
                } catch (const std::runtime_error &) {
                    throw;
                } catch (...) {
                    ADD_FAILURE()
                        << "non-runtime_error at cut " << cut;
                    throw;
                }
            },
            std::runtime_error)
            << "cut at " << cut << " of " << full.size();
    }

    // Sanity: the untruncated stream still loads.
    std::stringstream whole(full);
    EXPECT_EQ(serialize::readMemory(whole).size(), 3u);
}

TEST(SerializeTest, EveryStrictPrefixOfLongLabelThrows)
{
    // Label-section fuzz: make the labels dominate the file so most
    // cuts land inside a length field or label body. Cuts inside a
    // label's bytes must fail as a truncated *label* with the byte
    // offset of the label body, not as some later misparse.
    Rng rng(8);
    AssociativeMemory am(64);
    am.store(Hypervector::random(64, rng),
             std::string(100, 'x') + " first");
    am.store(Hypervector::random(64, rng),
             std::string(200, 'y') + " second");
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const std::string full = stream.str();

    // First label: length at byte 32, body at byte 40.
    const std::size_t labelBody = 40;
    const std::size_t labelEnd = labelBody + 106;
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        std::stringstream truncated(full.substr(0, cut));
        try {
            serialize::readMemory(truncated);
            ADD_FAILURE() << "no throw at cut " << cut;
        } catch (const std::runtime_error &e) {
            if (cut > labelBody && cut < labelEnd) {
                EXPECT_NE(
                    std::string(e.what()).find("truncated label"),
                    std::string::npos)
                    << "cut " << cut << ": " << e.what();
                EXPECT_NE(std::string(e.what()).find(
                              "at byte " +
                              std::to_string(labelBody)),
                          std::string::npos)
                    << "cut " << cut << ": " << e.what();
            }
        }
    }
}

TEST(SerializeTest, ErrorsReportByteOffsets)
{
    Rng rng(9);
    AssociativeMemory am(64);
    am.store(Hypervector::random(64, rng), "label");
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const std::string full = stream.str();

    // Cut inside the version field: the failing read started at
    // byte 8 (right after the magic).
    {
        std::stringstream truncated(full.substr(0, 12));
        try {
            serialize::readMemory(truncated);
            FAIL() << "no throw";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(
                          "truncated input at byte 8"),
                      std::string::npos)
                << e.what();
        }
    }

    // Corrupt the first label's length field (byte 32) into an
    // implausible value: the error names the value and the offset.
    {
        std::string bytes = full;
        bytes[32 + 7] = '\x7f'; // top length byte -> huge
        std::stringstream corrupted(bytes);
        try {
            serialize::readMemory(corrupted);
            FAIL() << "no throw";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(
                          "implausible label length"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find("at byte 32"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST(SerializeTest, EveryStrictPrefixOfEmptyMemoryThrows)
{
    // The empty-memory document is the shortest valid file; its
    // prefixes stress the header-only read path.
    AssociativeMemory am(64);
    std::stringstream stream;
    serialize::writeMemory(stream, am);
    const std::string full = stream.str();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        std::stringstream truncated(full.substr(0, cut));
        EXPECT_THROW(serialize::readMemory(truncated),
                     std::runtime_error)
            << "cut at " << cut << " of " << full.size();
    }
}

} // namespace

/**
 * @file
 * Bit-identity suite for the bound-pruned scan paths.
 *
 * Every policy (early abandonment forced on, the Auto cutoff, the
 * sampled-prefix cascade, and their combination in topK) must return
 * the same winner index AND the same distance as the exhaustive
 * scan, under every distance kernel this host supports and including
 * the adversarial cases pruning gets wrong when its bound handling
 * is off by one: exact ties and rows that are all identical.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/distance.hh"
#include "core/packed_rows.hh"
#include "core/random.hh"

namespace
{

using hdham::Hypervector;
using hdham::PackedRows;
using hdham::PruneMode;
using hdham::RowLayout;
using hdham::RowMatch;
using hdham::Rng;
using hdham::ScanPolicy;
using hdham::ScanStats;
using hdham::StoreLayout;
namespace distance = hdham::distance;

/** Names of every registered kernel this host can run. */
std::vector<const char *>
testableKernels()
{
    std::vector<const char *> kernels;
    for (const distance::KernelEntry &entry : distance::kernels())
        if (entry.usable())
            kernels.push_back(entry.name);
    return kernels;
}

/** RAII: restore automatic kernel dispatch after a pinned section. */
struct KernelGuard
{
    ~KernelGuard() { distance::setKernelByName("auto"); }
};

/** The policies under test: every pruning mechanism switched on. */
std::vector<ScanPolicy>
prunedPolicies(std::size_t dim)
{
    return {
        ScanPolicy{PruneMode::On, 0},
        ScanPolicy{PruneMode::Auto, 0},
        ScanPolicy{PruneMode::On, dim / 8},
        ScanPolicy{PruneMode::Auto, dim / 8},
        // Degenerate cascade widths must silently disable the
        // cascade, not corrupt the scan.
        ScanPolicy{PruneMode::Auto, dim},
        ScanPolicy{PruneMode::Auto, dim + 1},
    };
}

/**
 * The physical layouts every scan must be invariant under: the seed
 * row-major store and a sliced store whose head slice matches the
 * dim / 8 cascade width used by prunedPolicies().
 */
std::vector<StoreLayout>
layoutVariants(std::size_t dim)
{
    return {
        StoreLayout{RowLayout::RowMajor, 1, 0},
        StoreLayout{RowLayout::Sliced, 1, dim / 8},
    };
}

/**
 * A workload where pruning actually engages: most queries sit close
 * to one stored row (prototype with ~5% of bits flipped), a few are
 * uniform random, and two pairs of rows are exact duplicates so the
 * lowest-index tie rule is exercised.
 */
struct Workload
{
    PackedRows rows;
    std::vector<Hypervector> queries;

    explicit Workload(std::size_t dim, std::size_t numRows,
                      std::uint64_t seed)
        : rows(dim)
    {
        Rng rng(seed);
        std::vector<Hypervector> stored;
        for (std::size_t r = 0; r < numRows; ++r) {
            if (r >= 2 && r % 5 == 0) {
                stored.push_back(stored[r - 2]); // exact duplicate
            } else {
                stored.push_back(Hypervector::random(dim, rng));
            }
            rows.append(stored.back());
        }
        for (std::size_t q = 0; q < 2 * numRows; ++q) {
            if (q % 4 == 3) {
                queries.push_back(Hypervector::random(dim, rng));
            } else {
                Hypervector hv = stored[q % numRows];
                hv.injectErrors(dim / 20, rng);
                queries.push_back(std::move(hv));
            }
        }
    }
};

/** Exhaustive oracle: winner and distance with pruning off. */
RowMatch
exhaustiveNearest(const PackedRows &rows, const Hypervector &query,
                  std::size_t prefix)
{
    RowMatch m;
    m.index = rows.nearest(query, prefix,
                           ScanPolicy{PruneMode::Off, 0}, nullptr,
                           nullptr, &m.distance);
    return m;
}

TEST(PrunedScanTest, MatchesExhaustiveAcrossKernelsAndPolicies)
{
    KernelGuard guard;
    for (std::size_t dim : {512u, 1000u, 10007u}) {
        const Workload w(dim, 24, 0xBEEF + dim);
        for (const char *kernel : testableKernels()) {
            distance::setKernelByName(kernel);
            for (const Hypervector &query : w.queries) {
                const RowMatch want =
                    exhaustiveNearest(w.rows, query, dim);
                for (const ScanPolicy &policy :
                     prunedPolicies(dim)) {
                    ScanStats stats;
                    std::size_t got = 0;
                    const std::size_t winner = w.rows.nearest(
                        query, dim, policy, &stats, nullptr, &got);
                    EXPECT_EQ(winner, want.index)
                        << "dim " << dim << " kernel " << kernel
                        << " cascade " << policy.cascadePrefix;
                    EXPECT_EQ(got, want.distance)
                        << "dim " << dim << " kernel " << kernel
                        << " cascade " << policy.cascadePrefix;
                }
            }
        }
    }
}

TEST(PrunedScanTest, RaggedPrefixMatchesExhaustive)
{
    // Scan prefixes that end inside a word, on a dimension that is
    // itself not word-aligned.
    KernelGuard guard;
    const std::size_t dim = 1027;
    const Workload w(dim, 16, 0xFEED);
    for (const char *kernel : testableKernels()) {
        distance::setKernelByName(kernel);
        for (std::size_t prefix : {63u, 65u, 500u, 1000u, 1027u}) {
            for (const Hypervector &query : w.queries) {
                const RowMatch want =
                    exhaustiveNearest(w.rows, query, prefix);
                for (const ScanPolicy &policy :
                     prunedPolicies(prefix)) {
                    std::size_t got = 0;
                    const std::size_t winner = w.rows.nearest(
                        query, prefix, policy, nullptr, nullptr,
                        &got);
                    EXPECT_EQ(winner, want.index)
                        << "prefix " << prefix;
                    EXPECT_EQ(got, want.distance)
                        << "prefix " << prefix;
                }
            }
        }
    }
}

TEST(PrunedScanTest, AllRowsIdenticalPicksRowZero)
{
    // Adversarial: every row ties, so every policy must fall back to
    // the lowest index without pruning away the winner.
    Rng rng(7);
    const std::size_t dim = 640;
    PackedRows rows(dim);
    const Hypervector proto = Hypervector::random(dim, rng);
    for (std::size_t r = 0; r < 12; ++r)
        rows.append(proto);
    for (int near = 0; near < 2; ++near) {
        Hypervector query = proto;
        if (near)
            query.injectErrors(dim / 10, rng);
        const RowMatch want = exhaustiveNearest(rows, query, dim);
        EXPECT_EQ(want.index, 0u);
        for (const ScanPolicy &policy : prunedPolicies(dim)) {
            std::size_t got = 0;
            EXPECT_EQ(rows.nearest(query, dim, policy, nullptr,
                                   nullptr, &got),
                      0u);
            EXPECT_EQ(got, want.distance);
        }
    }
}

TEST(PrunedScanTest, TopKMatchesSortOracle)
{
    KernelGuard guard;
    const std::size_t dim = 1000;
    const Workload w(dim, 20, 0xCAFE);
    for (const char *kernel : testableKernels()) {
        distance::setKernelByName(kernel);
        for (const Hypervector &query : w.queries) {
            // Sort-based oracle: all distances, ascending
            // (distance, index).
            std::vector<RowMatch> oracle;
            for (std::size_t r = 0; r < w.rows.rows(); ++r)
                oracle.push_back(
                    {r, w.rows.distance(r, query, dim)});
            std::stable_sort(
                oracle.begin(), oracle.end(),
                [](const RowMatch &a, const RowMatch &b) {
                    return a.distance != b.distance
                               ? a.distance < b.distance
                               : a.index < b.index;
                });
            for (std::size_t k : {1u, 3u, 7u, 20u, 99u}) {
                const std::size_t kk =
                    std::min<std::size_t>(k, w.rows.rows());
                for (const ScanPolicy &policy :
                     prunedPolicies(dim)) {
                    std::vector<RowMatch> got;
                    w.rows.topK(query, dim, k, policy, nullptr,
                                got);
                    ASSERT_EQ(got.size(), kk);
                    for (std::size_t i = 0; i < kk; ++i) {
                        EXPECT_EQ(got[i].index, oracle[i].index)
                            << "k " << k << " rank " << i;
                        EXPECT_EQ(got[i].distance,
                                  oracle[i].distance)
                            << "k " << k << " rank " << i;
                    }
                }
            }
        }
    }
}

TEST(PrunedScanTest, StatsCountPrunedRowsOnSkewedWorkload)
{
    // A query equal to a stored row forces the bound to its minimum
    // immediately after that row; with the matching row first, every
    // later row must abandon under forced pruning.
    Rng rng(9);
    const std::size_t dim = 10000;
    PackedRows rows(dim);
    const Hypervector proto = Hypervector::random(dim, rng);
    rows.append(proto);
    for (std::size_t r = 1; r < 16; ++r)
        rows.append(Hypervector::random(dim, rng));

    ScanStats on;
    rows.nearest(proto, dim, ScanPolicy{PruneMode::On, 0}, &on,
                 nullptr);
    EXPECT_EQ(on.rowsPruned, rows.rows() - 1);
    EXPECT_GT(on.wordsSkipped, 0u);
    EXPECT_EQ(on.cascadeSurvivors, 0u);

    ScanStats off;
    rows.nearest(proto, dim, ScanPolicy{PruneMode::Off, 0}, &off,
                 nullptr);
    EXPECT_EQ(off.rowsPruned, 0u);
    EXPECT_EQ(off.wordsSkipped, 0u);
    EXPECT_EQ(off.cascadeSurvivors, 0u);

    ScanStats cascade;
    rows.nearest(proto, dim, ScanPolicy{PruneMode::Auto, 512},
                 &cascade, nullptr);
    EXPECT_EQ(cascade.rowsPruned, rows.rows() - 1);
    EXPECT_GT(cascade.wordsSkipped, 0u);
}

TEST(PrunedScanTest, PrunedCountersAreKernelInvariant)
{
    // rowsPruned and cascadeSurvivors depend only on distance
    // values, never on kernel strip placement; pin that contract.
    // (wordsSkipped is allowed to differ across kernels.)
    KernelGuard guard;
    const std::size_t dim = 2048;
    const Workload w(dim, 16, 0xD15C);
    for (const ScanPolicy &policy :
         {ScanPolicy{PruneMode::On, 0},
          ScanPolicy{PruneMode::Auto, 256}}) {
        for (const Hypervector &query : w.queries) {
            distance::setKernelByName("scalar");
            ScanStats scalar;
            w.rows.nearest(query, dim, policy, &scalar, nullptr);
            for (const char *kernel : testableKernels()) {
                distance::setKernelByName(kernel);
                ScanStats stats;
                w.rows.nearest(query, dim, policy, &stats, nullptr);
                EXPECT_EQ(stats.rowsPruned, scalar.rowsPruned)
                    << kernel;
                EXPECT_EQ(stats.cascadeSurvivors,
                          scalar.cascadeSurvivors)
                    << kernel;
            }
        }
    }
}

TEST(PrunedScanTest, BoundedKernelsAreBoundExact)
{
    // The kernel contract behind every exactness argument: the
    // bounded form returns the exact distance iff it is strictly
    // below the bound, and the sentinel otherwise -- never a
    // partial count.
    Rng rng(11);
    for (std::size_t dim : {64u, 500u, 1027u, 4096u}) {
        const Hypervector a = Hypervector::random(dim, rng);
        Hypervector b = a;
        b.injectErrors(dim / 7 + 1, rng);
        const std::size_t exact =
            distance::hamming(a.data(), b.data(), dim);
        for (const distance::KernelEntry &entry :
             distance::kernels()) {
            if (!entry.usable())
                continue;
            for (const std::size_t bound :
                 {std::size_t{1}, exact, exact + 1, dim + 1}) {
                std::size_t wordsRead = 0;
                const std::size_t got = entry.bounded(
                    a.data(), b.data(), dim, bound, &wordsRead);
                if (exact < bound)
                    EXPECT_EQ(got, exact)
                        << entry.name << " dim " << dim;
                else
                    EXPECT_EQ(got, distance::kAbandoned)
                        << entry.name << " dim " << dim
                        << " bound " << bound;
                EXPECT_LE(wordsRead, a.words());
            }
        }
    }
}

TEST(PrunedScanTest, TopKEdgeCasesAcrossLayoutsAndKernels)
{
    // The degenerate k values every policy, layout and kernel must
    // agree on: k = 0 returns nothing, k > rows() returns every row
    // in exact sort-oracle order.
    KernelGuard guard;
    const std::size_t dim = 768;
    Workload w(dim, 12, 0x70F0);
    for (const StoreLayout &variant : layoutVariants(dim)) {
        w.rows.setLayout(variant);
        for (const char *kernel : testableKernels()) {
            distance::setKernelByName(kernel);
            for (const Hypervector &query : w.queries) {
                std::vector<RowMatch> oracle;
                for (std::size_t r = 0; r < w.rows.rows(); ++r)
                    oracle.push_back(
                        {r, w.rows.distance(r, query, dim)});
                std::stable_sort(
                    oracle.begin(), oracle.end(),
                    [](const RowMatch &a, const RowMatch &b) {
                        return a.distance != b.distance
                                   ? a.distance < b.distance
                                   : a.index < b.index;
                    });
                for (const ScanPolicy &policy :
                     prunedPolicies(dim)) {
                    std::vector<RowMatch> got;
                    w.rows.topK(query, dim, 0, policy, nullptr,
                                got);
                    EXPECT_TRUE(got.empty())
                        << hdham::rowLayoutName(variant.layout)
                        << " kernel "
                        << kernel;
                    w.rows.topK(query, dim, w.rows.rows() + 5,
                                policy, nullptr, got);
                    ASSERT_EQ(got.size(), w.rows.rows());
                    for (std::size_t i = 0; i < got.size(); ++i) {
                        EXPECT_EQ(got[i].index, oracle[i].index)
                            << hdham::rowLayoutName(variant.layout)
                            << " kernel "
                            << kernel
                            << " rank " << i;
                        EXPECT_EQ(got[i].distance,
                                  oracle[i].distance)
                            << "rank " << i;
                    }
                }
            }
        }
    }
}

TEST(PrunedScanTest, TopKAllEqualDistancesKeepsIndexOrder)
{
    // k == rows() with every stored row identical: all distances tie,
    // so the output must be the full index sequence 0 .. rows() - 1
    // in ascending order -- the heap's worse-first comparator must
    // never reorder equal distances.
    KernelGuard guard;
    Rng rng(21);
    const std::size_t dim = 640;
    PackedRows rows(dim);
    const Hypervector proto = Hypervector::random(dim, rng);
    for (std::size_t r = 0; r < 10; ++r)
        rows.append(proto);
    Hypervector query = proto;
    query.injectErrors(dim / 9, rng);
    for (const StoreLayout &variant : layoutVariants(dim)) {
        rows.setLayout(variant);
        const std::size_t d = rows.distance(0, query, dim);
        for (const char *kernel : testableKernels()) {
            distance::setKernelByName(kernel);
            for (const ScanPolicy &policy : prunedPolicies(dim)) {
                std::vector<RowMatch> got;
                rows.topK(query, dim, rows.rows(), policy, nullptr,
                          got);
                ASSERT_EQ(got.size(), rows.rows());
                for (std::size_t i = 0; i < got.size(); ++i) {
                    EXPECT_EQ(got[i].index, i)
                        << hdham::rowLayoutName(variant.layout)
                        << " kernel "
                        << kernel;
                    EXPECT_EQ(got[i].distance, d);
                }
            }
        }
    }
}

} // namespace

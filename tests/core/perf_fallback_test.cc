/**
 * @file
 * The graceful-degradation contract of the perf layer, pinned: with
 * perf_event_open forced to fail (and under the HDHAM_PERF=off
 * environment rerun registered in tests/CMakeLists.txt), a fully
 * instrumented query run -- tracer with perf capture, slow-query
 * capture with perf deltas, process counters -- produces
 * bit-identical search results, identical metrics counters and an
 * identical trace span structure to a plain run. Broken counters may
 * cost a branch; they may never change an answer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/event_log.hh"
#include "core/hypervector.hh"
#include "core/metrics.hh"
#include "core/perf_counters.hh"
#include "core/random.hh"
#include "core/trace.hh"

namespace
{

using namespace hdham;

/** Restores the forced-failure switch even when a test fails. */
struct ForcedUnavailable
{
    ForcedUnavailable() { perf::testing::forceUnavailable(true); }
    ~ForcedUnavailable() { perf::testing::forceUnavailable(false); }
};

struct Workload
{
    AssociativeMemory am{1024};
    std::vector<Hypervector> queries;
};

Workload
makeWorkload()
{
    Workload w;
    Rng rng(2017);
    for (int c = 0; c < 12; ++c)
        w.am.store(Hypervector::random(1024, rng));
    for (int q = 0; q < 24; ++q)
        w.queries.push_back(Hypervector::random(1024, rng));
    return w;
}

/** One fully instrumented run; returns results + observability. */
struct RunOutcome
{
    std::vector<SearchResult> results;
    std::map<std::string, std::uint64_t> counters;
    /** (span name, depth) of every traced event, sorted. */
    std::vector<std::pair<std::string, std::uint32_t>> spanShape;
    std::size_t capturedQueries = 0;
    bool anyPerfInTrace = false;
    bool anyPerfInEvents = false;
};

RunOutcome
instrumentedRun(Workload &w, bool withPerfCapture,
                std::size_t threads)
{
    RunOutcome out;
    metrics::QueryMetrics sink;
    w.am.attachMetrics(&sink);

    trace::Tracer tracer;
    tracer.setCapturePerf(withPerfCapture);
    trace::setActive(&tracer);

    events::EventLog log(256);
    events::setSlowQueryCapture({&log, 0.0, withPerfCapture});

    perf::ProcessCounters workload;
    out.results = w.am.searchBatch(w.queries, threads);
    out.anyPerfInEvents = workload.delta().anyAvailable() &&
                          perf::status() != perf::Status::On;

    events::clearSlowQueryCapture();
    trace::setActive(nullptr);
    w.am.attachMetrics(nullptr);

    metrics::Registry registry;
    registry.attachQuery("am", sink);
    out.counters = registry.snapshot().counters;

    for (const auto &[track, e] : tracer.events()) {
        out.spanShape.emplace_back(e.name, e.depth);
        out.anyPerfInTrace |= e.perfDelta.anyAvailable();
    }
    std::sort(out.spanShape.begin(), out.spanShape.end());

    out.capturedQueries = log.size();
    for (const events::QueryEvent &e : log.events()) {
        out.anyPerfInEvents |= e.perfDelta.anyAvailable();
        for (const trace::Event &s : e.spans)
            out.anyPerfInEvents |= s.perfDelta.anyAvailable();
    }
    return out;
}

TEST(PerfFallbackTest, BrokenCountersNeverChangeAnswers)
{
    Workload w = makeWorkload();
    for (const std::size_t threads :
         {std::size_t(1), std::size_t(4)}) {
        // Baseline: no perf capture anywhere, counters untouched.
        const RunOutcome plain = instrumentedRun(w, false, threads);
        // Same workload with perf capture requested everywhere but
        // every perf_event_open forced to fail.
        RunOutcome broken;
        {
            const ForcedUnavailable forced;
            EXPECT_EQ(perf::status(), perf::Status::Unavailable);
            broken = instrumentedRun(w, true, threads);
        }

        // Results bit-identical.
        ASSERT_EQ(broken.results.size(), plain.results.size());
        for (std::size_t i = 0; i < plain.results.size(); ++i) {
            EXPECT_EQ(broken.results[i].classId,
                      plain.results[i].classId);
            EXPECT_EQ(broken.results[i].bestDistance,
                      plain.results[i].bestDistance);
        }
        // Metrics counters identical.
        EXPECT_EQ(broken.counters, plain.counters);
        // Trace structure identical: same spans at the same depths.
        EXPECT_EQ(broken.spanShape, plain.spanShape);
        // Slow-query capture saw every query either way.
        EXPECT_EQ(plain.capturedQueries, w.queries.size());
        EXPECT_EQ(broken.capturedQueries, w.queries.size());
        // And the broken run leaked no counter values anywhere.
        EXPECT_FALSE(broken.anyPerfInTrace);
        EXPECT_FALSE(broken.anyPerfInEvents);
    }
}

TEST(PerfFallbackTest, ForcedFailureReadsAsFullyTagged)
{
    const ForcedUnavailable forced;
    EXPECT_FALSE(perf::available());
    EXPECT_FALSE(perf::threadSample().anyAvailable());
    perf::ProcessCounters workload;
    EXPECT_FALSE(workload.read().anyAvailable());
    EXPECT_FALSE(workload.delta().anyAvailable());
}

/**
 * The exported trace must be byte-compatible with a no-perf trace
 * when counters are unavailable: the frozen hdham.trace.v1 args
 * ({self_us, depth}) gain no keys.
 */
TEST(PerfFallbackTest, TraceArgsStayFrozenWithoutCounters)
{
    const Workload w = makeWorkload();
    const ForcedUnavailable forced;
    trace::Tracer tracer;
    tracer.setCapturePerf(true);
    trace::setActive(&tracer);
    w.am.searchBatch(w.queries, 2);
    trace::setActive(nullptr);

    std::ostringstream json;
    tracer.writeChromeJson(json);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"self_us\""), std::string::npos);
    EXPECT_NE(text.find("\"depth\""), std::string::npos);
    for (std::size_t id = 0; id < perf::kCounterCount; ++id) {
        EXPECT_EQ(text.find(std::string("\"") +
                            perf::counterName(id) + "\""),
                  std::string::npos)
            << perf::counterName(id);
    }
}

/**
 * When the host does support counters, perf capture must still not
 * perturb answers or logical counters -- only add tagged data. This
 * runs un-forced, so on denied hosts it degenerates into a second
 * copy of the forced test (which is the point: it passes anywhere).
 */
TEST(PerfFallbackTest, LiveCountersOnlyAddData)
{
    Workload w = makeWorkload();
    const RunOutcome plain = instrumentedRun(w, false, 2);
    const RunOutcome live = instrumentedRun(w, true, 2);
    ASSERT_EQ(live.results.size(), plain.results.size());
    for (std::size_t i = 0; i < plain.results.size(); ++i) {
        EXPECT_EQ(live.results[i].classId, plain.results[i].classId);
        EXPECT_EQ(live.results[i].bestDistance,
                  plain.results[i].bestDistance);
    }
    EXPECT_EQ(live.counters, plain.counters);
    EXPECT_EQ(live.spanShape, plain.spanShape);
}

} // namespace

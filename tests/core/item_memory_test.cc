/**
 * @file
 * Unit tests for the item memory and the text alphabet.
 */

#include <gtest/gtest.h>

#include "core/item_memory.hh"

namespace
{

using hdham::ItemMemory;
using hdham::TextAlphabet;

TEST(ItemMemoryTest, SizesAndDim)
{
    ItemMemory items(27, 1000, 1);
    EXPECT_EQ(items.size(), 27u);
    EXPECT_EQ(items.dim(), 1000u);
    EXPECT_EQ(items[0].dim(), 1000u);
}

TEST(ItemMemoryTest, SeedsAreBalanced)
{
    ItemMemory items(27, 10000, 2);
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(items[i].popcount(), 5000u);
}

TEST(ItemMemoryTest, DeterministicPerSeed)
{
    ItemMemory a(27, 512, 42), b(27, 512, 42);
    for (std::size_t i = 0; i < 27; ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(ItemMemoryTest, DifferentSeedsDiffer)
{
    ItemMemory a(5, 512, 1), b(5, 512, 2);
    EXPECT_NE(a[0], b[0]);
}

TEST(ItemMemoryTest, SeedsAreNearlyOrthogonal)
{
    // The paper's "27 unique orthogonal hypervectors".
    ItemMemory items(27, 10000, 3);
    for (std::size_t i = 0; i < items.size(); ++i) {
        for (std::size_t j = i + 1; j < items.size(); ++j) {
            EXPECT_NEAR(items[i].hamming(items[j]), 5000.0, 350.0)
                << "pair " << i << "," << j;
        }
    }
}

TEST(TextAlphabetTest, LetterMapping)
{
    EXPECT_EQ(TextAlphabet::symbolOf('a'), 0u);
    EXPECT_EQ(TextAlphabet::symbolOf('z'), 25u);
    EXPECT_EQ(TextAlphabet::symbolOf('A'), 0u);
    EXPECT_EQ(TextAlphabet::symbolOf('Q'), 16u);
}

TEST(TextAlphabetTest, NonLettersCollapseToSpace)
{
    for (char c : {' ', '.', ',', '7', '!', '\n', '\t'})
        EXPECT_EQ(TextAlphabet::symbolOf(c), TextAlphabet::spaceId);
}

TEST(TextAlphabetTest, CharOfInverts)
{
    for (std::size_t id = 0; id < TextAlphabet::size; ++id)
        EXPECT_EQ(TextAlphabet::symbolOf(TextAlphabet::charOf(id)),
                  id);
}

TEST(TextAlphabetTest, NormalizeLowersAndCollapses)
{
    EXPECT_EQ(TextAlphabet::normalize("Hello, World! 42"),
              "hello  world    ");
}

TEST(TextAlphabetTest, NormalizeIsIdempotent)
{
    const std::string once = TextAlphabet::normalize("MiXeD. 123 text");
    EXPECT_EQ(TextAlphabet::normalize(once), once);
}

} // namespace

/**
 * @file
 * Snapshot bit-identity suite: the refactored read path must be
 * indistinguishable from the pre-refactor direct-engine path.
 *
 * For every store layout x shard count x scan policy, queries served
 * through a pinned MemorySnapshot (published via SnapshotBuilder ->
 * SnapshotSource) return the same winners, distances, rankings AND
 * the same pruning/metrics counters as an AssociativeMemory driven
 * directly -- the snapshot layer adds ownership semantics, never
 * different arithmetic. Runs once under the ambient kernel and once
 * pinned to the scalar reference (see tests/CMakeLists.txt), like
 * the other equivalence gates.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/model_file.hh"
#include "core/random.hh"
#include "core/snapshot.hh"
#include "ham/d_ham.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::PruneMode;
using hdham::RankedMatch;
using hdham::RowLayout;
using hdham::Rng;
using hdham::ScanPolicy;
using hdham::SearchResult;
using hdham::StoreLayout;
using hdham::metrics::QueryMetrics;
using hdham::snapshot::MemorySnapshot;
using hdham::snapshot::SnapshotBuilder;
using hdham::snapshot::SnapshotRef;
using hdham::snapshot::SnapshotSource;

constexpr std::size_t kDim = 1024;
constexpr std::size_t kClasses = 53; // ragged for every shard count
constexpr std::size_t kQueries = 24;
constexpr std::size_t kCascade = 128;
constexpr std::size_t kTopK = 5;

struct GridPoint
{
    StoreLayout layout;
    ScanPolicy policy;
    std::string name;
};

std::vector<GridPoint>
grid()
{
    std::vector<GridPoint> points;
    for (const std::size_t shards : {std::size_t(1), std::size_t(3)}) {
        for (const PruneMode prune :
             {PruneMode::Off, PruneMode::On, PruneMode::Auto}) {
            GridPoint row;
            row.layout.layout = RowLayout::RowMajor;
            row.layout.shards = shards;
            row.policy.prune = prune;
            row.name = "row/s" + std::to_string(shards) + "/p" +
                       std::to_string(static_cast<int>(prune));
            points.push_back(row);

            GridPoint cascade = row;
            cascade.policy.cascadePrefix = kCascade;
            cascade.name += "/cascade";
            points.push_back(cascade);

            GridPoint sliced = cascade;
            sliced.layout.layout = RowLayout::Sliced;
            sliced.layout.slicePrefix = kCascade;
            sliced.name = "sliced/s" + std::to_string(shards) +
                          "/p" + std::to_string(static_cast<int>(
                                     prune)) +
                          "/cascade";
            points.push_back(sliced);
        }
    }
    return points;
}

AssociativeMemory
testMemory()
{
    Rng rng(0x657176ULL);
    AssociativeMemory am(kDim);
    for (std::size_t i = 0; i < kClasses; ++i)
        am.store(Hypervector::random(kDim, rng),
                 "lang" + std::to_string(i));
    return am;
}

std::vector<Hypervector>
testQueries()
{
    // Mix of pure-random queries and near-duplicates of stored rows
    // (near hits make pruning bounds actually bite).
    Rng rng(0x717279ULL);
    const AssociativeMemory am = testMemory();
    std::vector<Hypervector> queries;
    for (std::size_t q = 0; q < kQueries; ++q) {
        if (q % 2 == 0) {
            queries.push_back(Hypervector::random(kDim, rng));
        } else {
            const Hypervector row = am.vectorOf(q % kClasses);
            std::vector<std::uint64_t> words(
                row.data(), row.data() + row.words());
            words[q % words.size()] ^= 0xF0F0ULL;
            queries.push_back(
                Hypervector::fromWords(kDim, words.data()));
        }
    }
    return queries;
}

/** Every counter pair of two QueryMetrics, for exact comparison. */
std::vector<std::pair<std::string, std::uint64_t>>
counterValues(const QueryMetrics &m)
{
    return {
        {"queries", m.queries.value()},
        {"batches", m.batches.value()},
        {"rowsScanned", m.rowsScanned.value()},
        {"rowsPruned", m.rowsPruned.value()},
    };
}

/** Pin a published snapshot built from `testMemory()` with @p g. */
SnapshotRef
publishGridSnapshot(SnapshotSource &source, const GridPoint &g,
                    QueryMetrics *sink)
{
    SnapshotBuilder builder(
        *MemorySnapshot::fromMemory(testMemory()));
    builder.setStoreLayout(g.layout);
    builder.setScanPolicy(g.policy);
    builder.attachMetrics(sink);
    builder.publish(source);
    return source.acquire();
}

TEST(SnapshotEquivalenceTest, MatchesDirectEngineAcrossGrid)
{
    const std::vector<Hypervector> queries = testQueries();
    for (const GridPoint &g : grid()) {
        SCOPED_TRACE(g.name);

        // Direct pre-refactor path: a mutable memory configured in
        // place.
        QueryMetrics directSink;
        AssociativeMemory direct = testMemory();
        direct.setStoreLayout(g.layout);
        direct.setScanPolicy(g.policy);
        direct.attachMetrics(&directSink);

        // Snapshot path: builder -> publish -> pin.
        QueryMetrics snapSink;
        SnapshotSource source;
        const SnapshotRef pinned =
            publishGridSnapshot(source, g, &snapSink);
        ASSERT_TRUE(static_cast<bool>(pinned));

        for (const Hypervector &query : queries) {
            const SearchResult want = direct.search(query);
            const SearchResult got =
                pinned->memory().search(query);
            EXPECT_EQ(got.classId, want.classId);
            EXPECT_EQ(got.bestDistance, want.bestDistance);

            const std::vector<RankedMatch> wantK =
                direct.searchTopK(query, kTopK);
            const std::vector<RankedMatch> gotK =
                pinned->memory().searchTopK(query, kTopK);
            ASSERT_EQ(gotK.size(), wantK.size());
            for (std::size_t i = 0; i < wantK.size(); ++i) {
                EXPECT_EQ(gotK[i].classId, wantK[i].classId);
                EXPECT_EQ(gotK[i].distance, wantK[i].distance);
            }
        }

        // Batched path, multi-threaded.
        const auto wantBatch = direct.searchBatch(queries, 4);
        const auto gotBatch =
            pinned->memory().searchBatch(queries, 4);
        ASSERT_EQ(gotBatch.size(), wantBatch.size());
        for (std::size_t i = 0; i < wantBatch.size(); ++i) {
            EXPECT_EQ(gotBatch[i].classId, wantBatch[i].classId);
            EXPECT_EQ(gotBatch[i].bestDistance,
                      wantBatch[i].bestDistance);
        }

        // The serving counters -- scanned, pruned, query and batch
        // totals -- must agree exactly, not just the answers.
        const auto want = counterValues(directSink);
        const auto got = counterValues(snapSink);
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].second, want[i].second)
                << "counter " << want[i].first;
        }
    }
}

TEST(SnapshotEquivalenceTest, MappedModelMatchesDirectEngine)
{
    const std::string path =
        ::testing::TempDir() + "snapshot_equiv_model.hdc";
    const AssociativeMemory original = testMemory();
    hdham::modelfile::save(path, original);

    MemorySnapshot::Options opts;
    opts.policy.prune = PruneMode::On;
    SnapshotSource source;
    source.publish(MemorySnapshot::fromFile(path, opts));
    const SnapshotRef pinned = source.acquire();
    EXPECT_TRUE(pinned->mapped());

    AssociativeMemory direct = testMemory();
    direct.setScanPolicy(opts.policy);

    for (const Hypervector &query : testQueries()) {
        const SearchResult want = direct.search(query);
        const SearchResult got = pinned->memory().search(query);
        EXPECT_EQ(got.classId, want.classId);
        EXPECT_EQ(got.bestDistance, want.bestDistance);
    }
    std::remove(path.c_str());
}

TEST(SnapshotEquivalenceTest, BoundDesignMatchesDirectLoad)
{
    // The HAM read path takes a snapshot handle: a design bound via
    // bindSnapshot must serve exactly like one loaded from the same
    // memory directly.
    SnapshotSource source;
    source.publish(MemorySnapshot::fromMemory(testMemory()));

    hdham::ham::DHamConfig cfg;
    cfg.dim = kDim;
    hdham::ham::DHam bound(cfg);
    bound.bindSnapshot(source.acquire());
    EXPECT_EQ(bound.boundSequence(), 1u);

    hdham::ham::DHam direct(cfg);
    const AssociativeMemory reference = testMemory();
    direct.loadFrom(reference);
    EXPECT_EQ(direct.boundSequence(), 0u);

    for (const Hypervector &query : testQueries()) {
        const auto want = direct.search(query);
        const auto got = bound.search(query);
        EXPECT_EQ(got.classId, want.classId);
        EXPECT_EQ(got.reportedDistance, want.reportedDistance);
    }

    // Binding twice, or binding an empty ref, is a usage error.
    EXPECT_THROW(bound.bindSnapshot(source.acquire()),
                 std::logic_error);
    hdham::ham::DHam fresh(cfg);
    EXPECT_THROW(fresh.bindSnapshot(SnapshotRef()),
                 std::logic_error);
}

} // namespace

/**
 * @file
 * Unit tests for the query-path observability primitives: counters,
 * gauges, the thread-safe latency histogram, classification metrics
 * and the registry's JSON snapshot.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/json.hh"
#include "core/metrics.hh"

namespace
{

namespace metrics = hdham::metrics;

TEST(CounterTest, StartsAtZeroAndAccumulates)
{
    metrics::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins)
{
    metrics::Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.25);
    g.set(-1.5);
    EXPECT_DOUBLE_EQ(g.value(), -1.5);
}

TEST(LatencyHistogramTest, EmptySummaryIsAllZero)
{
    metrics::LatencyHistogram h;
    const metrics::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.sum, 0.0);
    EXPECT_DOUBLE_EQ(s.p50, 0.0);
    EXPECT_DOUBLE_EQ(s.p99, 0.0);
    EXPECT_EQ(s.overflow, 0u);
    EXPECT_EQ(s.buckets.size(), metrics::LatencyHistogram::kBuckets);
}

TEST(LatencyHistogramTest, SingleSampleHasExactPercentiles)
{
    metrics::LatencyHistogram h;
    h.record(100.0);
    const metrics::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.sum, 100.0);
    EXPECT_DOUBLE_EQ(s.min, 100.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    // Interpolation clamps to [min, max], so every percentile of a
    // single sample is that sample.
    EXPECT_DOUBLE_EQ(s.p50, 100.0);
    EXPECT_DOUBLE_EQ(s.p95, 100.0);
    EXPECT_DOUBLE_EQ(s.p99, 100.0);
}

TEST(LatencyHistogramTest, PowersOfTwoBucketing)
{
    metrics::LatencyHistogram h;
    h.record(1.0);    // bucket 0 (x <= 1)
    h.record(1.5);    // bucket 1 (1 < x <= 2)
    h.record(1000.0); // bucket 10 (512 < x <= 1024)
    const metrics::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 3u);
    EXPECT_EQ(s.buckets[0].second, 1u);
    EXPECT_EQ(s.buckets[1].second, 1u);
    EXPECT_EQ(s.buckets[10].second, 1u);
    EXPECT_DOUBLE_EQ(s.buckets[10].first, 1024.0);
    EXPECT_EQ(s.overflow, 0u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(LatencyHistogramTest, OverflowLandsInOverflowBucket)
{
    metrics::LatencyHistogram h;
    const double beyond =
        metrics::LatencyHistogram::bucketBound(
            metrics::LatencyHistogram::kBuckets - 1) *
        4.0;
    h.record(10.0);
    h.record(beyond);
    const metrics::HistogramSummary s = h.summary();
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.overflow, 1u);
    // A rank in the overflow bucket reports the exact max.
    EXPECT_DOUBLE_EQ(s.p99, beyond);
    EXPECT_DOUBLE_EQ(s.max, beyond);
}

TEST(ClassificationMetricsTest, AccumulatesConfusions)
{
    metrics::ClassificationMetrics m;
    EXPECT_EQ(m.samples(), 0u);
    EXPECT_EQ(m.classes(), 0u);
    const std::vector<std::vector<std::size_t>> confusion = {
        {3, 1},
        {0, 4},
    };
    m.recordConfusion(confusion, {"cat", "dog"});
    m.recordConfusion(confusion, {"cat", "dog"});
    EXPECT_EQ(m.samples(), 16u);
    EXPECT_EQ(m.correct(), 14u);
    EXPECT_EQ(m.classes(), 2u);
}

TEST(ClassificationMetricsTest, RejectsShapeChanges)
{
    metrics::ClassificationMetrics m;
    m.recordConfusion({{1, 0}, {0, 1}});
    EXPECT_THROW(m.recordConfusion({{1}}), std::invalid_argument);
    EXPECT_THROW(m.recordConfusion({{1, 0}, {0, 1}}, {"only-one"}),
                 std::invalid_argument);
    // Non-square matrices are rejected outright.
    metrics::ClassificationMetrics fresh;
    EXPECT_THROW(fresh.recordConfusion({{1, 0}}),
                 std::invalid_argument);
}

TEST(RegistryTest, SnapshotExportsStableKeySet)
{
    metrics::QueryMetrics q;
    q.queries.add(7);
    metrics::Registry registry;
    registry.attachQuery("dham", q);
    registry.setGauge("model.dim", 1000.0);

    const metrics::Snapshot snap = registry.snapshot();
    // Every QueryMetrics counter is always exported, driven or not.
    for (const char *key :
         {"dham.queries", "dham.batches", "dham.rows_scanned",
          "dham.bits_sampled", "dham.blocks_sensed", "dham.sa_fires",
          "dham.overscale_errors", "dham.stages_run",
          "dham.lta_comparisons", "dham.saturation_events"}) {
        EXPECT_TRUE(snap.counters.count(key)) << key;
    }
    EXPECT_EQ(snap.counters.at("dham.queries"), 7u);
    EXPECT_EQ(snap.counters.at("dham.sa_fires"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("model.dim"), 1000.0);
    EXPECT_TRUE(snap.histograms.count("dham.batch_latency_us"));
}

TEST(RegistryTest, ClassificationKeysUseLabels)
{
    metrics::ClassificationMetrics m;
    m.recordConfusion({{2, 0}, {1, 3}}, {"en", "de"});
    metrics::Registry registry;
    registry.attachClassification("lang", m);
    const metrics::Snapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("lang.samples"), 6u);
    EXPECT_EQ(snap.counters.at("lang.correct"), 5u);
    EXPECT_EQ(snap.counters.at("lang.class.en.samples"), 2u);
    EXPECT_EQ(snap.counters.at("lang.class.en.correct"), 2u);
    EXPECT_EQ(snap.counters.at("lang.class.en.predicted"), 3u);
    EXPECT_EQ(snap.counters.at("lang.class.de.samples"), 4u);
}

TEST(RegistryTest, JsonDocumentShape)
{
    metrics::QueryMetrics q;
    q.queries.add(3);
    q.batchLatencyUs.record(5.0);
    metrics::Registry registry;
    registry.attachQuery("am", q);
    registry.setGauge("run.threads", 2.0);

    const std::string json = registry.toJson();
    EXPECT_NE(json.find("\"schema\": \"hdham.metrics.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"am.queries\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"run.threads\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"am.batch_latency_us\""),
              std::string::npos);
    EXPECT_NE(json.find("\"p95_us\""), std::string::npos);
    // Counters print as exact integers, not scientific notation.
    EXPECT_EQ(json.find("e+"), std::string::npos);
}

TEST(RegistryTest, JsonEscapesStrings)
{
    metrics::ClassificationMetrics m;
    m.recordConfusion({{1}}, {"we\"ird\\label\n"});
    metrics::Registry registry;
    registry.attachClassification("x", m);
    const std::string json = registry.toJson();
    EXPECT_NE(json.find("we\\\"ird\\\\label\\n"), std::string::npos);
}

TEST(RegistryTest, SaveJsonRejectsBadPath)
{
    metrics::Registry registry;
    EXPECT_THROW(registry.saveJson("/nonexistent/dir/out.json"),
                 std::runtime_error);
}

TEST(RegistryTest, SaveJsonRoundTrips)
{
    metrics::QueryMetrics q;
    q.queries.add(1);
    metrics::Registry registry;
    registry.attachQuery("am", q);
    const std::string path =
        ::testing::TempDir() + "hdham_metrics.json";
    registry.saveJson(path);

    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    // Each render is a fresh snapshot, so the live members
    // (snapshot_unix_ns, process RSS gauges) may move between the
    // two documents; everything attached must round-trip exactly.
    const hdham::json::Value saved = hdham::json::parse(buffer.str());
    const hdham::json::Value direct =
        hdham::json::parse(registry.toJson());
    EXPECT_EQ(saved.at("schema").asString(),
              direct.at("schema").asString());
    ASSERT_TRUE(saved.has("snapshot_unix_ns"));
    EXPECT_GT(saved.at("snapshot_unix_ns").asNumber(), 0.0);
    for (const auto &[key, value] :
         direct.at("counters").members()) {
        EXPECT_DOUBLE_EQ(saved.at("counters").at(key).asNumber(),
                         value.asNumber())
            << key;
    }
    EXPECT_DOUBLE_EQ(saved.at("counters").at("am.queries").asNumber(),
                     1.0);
    for (const char *gauge :
         {"process.rss_bytes", "process.peak_rss_bytes"}) {
        ASSERT_TRUE(saved.at("gauges").has(gauge)) << gauge;
    }
    std::remove(path.c_str());
}

} // namespace

/**
 * @file
 * Save -> mmap-load round-trip property: for random models across
 * every on-disk layout (row-major and bit-sliced, single- and
 * multi-shard), both a ragged and an aligned dimensionality, and
 * every scan policy, the mapped view answers nearest / top-k /
 * batched searches bit-identically to the in-RAM original -- and
 * drives the pruning counters to the exact same values, since the
 * counters are part of the documented determinism contract.
 *
 * The suite runs twice in ctest: once under the default runtime
 * kernel dispatch and once pinned to the scalar kernel
 * (HDHAM_KERNEL=scalar), so a SIMD-path divergence on mapped memory
 * cannot hide behind matching scalar results.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/item_memory.hh"
#include "core/level_memory.hh"
#include "core/metrics.hh"
#include "core/model_file.hh"
#include "core/random.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::PruneMode;
using hdham::RankedMatch;
using hdham::Rng;
using hdham::RowLayout;
using hdham::ScanPolicy;
using hdham::SearchResult;
using hdham::StoreLayout;
namespace metrics = hdham::metrics;
namespace modelfile = hdham::modelfile;

struct LayoutCase
{
    const char *name;
    StoreLayout layout;
};

std::vector<LayoutCase>
layoutCases()
{
    std::vector<LayoutCase> cases;
    for (const std::size_t shards : {1u, 4u}) {
        StoreLayout l;
        l.shards = shards;
        cases.push_back(
            {shards == 1 ? "row-major" : "row-major/4-shard", l});
    }
    for (const std::size_t shards : {1u, 3u}) {
        StoreLayout l;
        l.layout = RowLayout::Sliced;
        l.slicePrefix = 128;
        l.shards = shards;
        cases.push_back(
            {shards == 1 ? "sliced" : "sliced/3-shard", l});
    }
    return cases;
}

std::vector<ScanPolicy>
scanPolicies()
{
    ScanPolicy off;
    off.prune = PruneMode::Off;
    ScanPolicy on;
    on.prune = PruneMode::On;
    on.cascadePrefix = 128;
    ScanPolicy autoPolicy; // Auto, no cascade
    return {off, autoPolicy, on};
}

AssociativeMemory
buildModel(std::size_t dim, std::size_t classes, Rng &rng,
           const StoreLayout &layout)
{
    AssociativeMemory am(dim);
    am.reserve(classes);
    for (std::size_t id = 0; id < classes; ++id) {
        std::string label = "c";
        label += std::to_string(id);
        am.store(Hypervector::random(dim, rng), std::move(label));
    }
    am.setStoreLayout(layout);
    return am;
}

std::string
savedTo(const std::string &name, const AssociativeMemory &am)
{
    const std::string path = ::testing::TempDir() + name;
    modelfile::save(path, am);
    return path;
}

void
expectSameResult(const SearchResult &got, const SearchResult &want,
                 const std::string &where)
{
    EXPECT_EQ(got.classId, want.classId) << where;
    EXPECT_EQ(got.bestDistance, want.bestDistance) << where;
}

/** Counter snapshot for the determinism comparison. */
struct Counters
{
    std::uint64_t scanned;
    std::uint64_t pruned;
    std::uint64_t skipped;
    std::uint64_t survivors;
};

Counters
snapshot(const metrics::QueryMetrics &m)
{
    return {m.rowsScanned.value(), m.rowsPruned.value(),
            m.wordsSkipped.value(), m.cascadeSurvivors.value()};
}

TEST(ModelRoundTripPropertyTest, MappedSearchesAreBitIdentical)
{
    Rng rng(0x50F7C0DEULL);
    for (const std::size_t dim : {250u, 1000u}) {
        for (const auto &lc : layoutCases()) {
            const std::string where0 = lc.name + std::string("/d") +
                                       std::to_string(dim);
            const AssociativeMemory am =
                buildModel(dim, 17, rng, lc.layout);
            const std::string path =
                savedTo("rt_" + std::to_string(dim) + "_" +
                            std::to_string(lc.layout.shards) + "_" +
                            (lc.layout.layout == RowLayout::Sliced
                                 ? "s"
                                 : "r") +
                            ".hdc",
                        am);
            modelfile::ModelView view(path);
            ASSERT_EQ(view.dim(), dim);
            ASSERT_EQ(view.classes(), 17u);
            EXPECT_EQ(view.layout().layout, lc.layout.layout);

            std::vector<Hypervector> queries;
            for (int q = 0; q < 24; ++q)
                queries.push_back(Hypervector::random(dim, rng));

            for (const ScanPolicy &policy : scanPolicies()) {
                AssociativeMemory reference = am;
                reference.setScanPolicy(policy);
                view.memory().setScanPolicy(policy);
                const std::string where =
                    where0 + "/prune=" +
                    hdham::pruneModeName(policy.prune);

                metrics::QueryMetrics ramMetrics;
                metrics::QueryMetrics mapMetrics;
                reference.attachMetrics(&ramMetrics);
                view.memory().attachMetrics(&mapMetrics);

                for (const auto &query : queries) {
                    expectSameResult(view.memory().search(query),
                                     reference.search(query),
                                     where + "/search");
                    const auto wantTop =
                        reference.searchTopK(query, 5);
                    const auto gotTop =
                        view.memory().searchTopK(query, 5);
                    ASSERT_EQ(gotTop.size(), wantTop.size());
                    for (std::size_t i = 0; i < wantTop.size();
                         ++i) {
                        EXPECT_EQ(gotTop[i].classId,
                                  wantTop[i].classId)
                            << where << "/topk[" << i << "]";
                        EXPECT_EQ(gotTop[i].distance,
                                  wantTop[i].distance)
                            << where << "/topk[" << i << "]";
                    }
                }
                for (const std::size_t threads : {1u, 4u}) {
                    const auto want =
                        reference.searchBatch(queries, threads);
                    const auto got =
                        view.memory().searchBatch(queries, threads);
                    ASSERT_EQ(got.size(), want.size());
                    for (std::size_t i = 0; i < want.size(); ++i)
                        expectSameResult(
                            got[i], want[i],
                            where + "/batch[" +
                                std::to_string(i) + "]x" +
                                std::to_string(threads));
                }

                // The pruning counters are part of the determinism
                // contract: same layout + same policy + same queries
                // must do exactly the same scan work, mapped or not.
                const Counters ram = snapshot(ramMetrics);
                const Counters map = snapshot(mapMetrics);
                EXPECT_EQ(map.scanned, ram.scanned) << where;
                EXPECT_EQ(map.pruned, ram.pruned) << where;
                EXPECT_EQ(map.skipped, ram.skipped) << where;
                EXPECT_EQ(map.survivors, ram.survivors) << where;
                EXPECT_GT(ram.scanned, 0u) << where;

                reference.attachMetrics(nullptr);
                view.memory().attachMetrics(nullptr);
            }

            // Detailed search (full distance vector) from the map.
            const auto wantDetail =
                am.searchDetailed(queries.front());
            const auto gotDetail =
                view.memory().searchDetailed(queries.front());
            EXPECT_EQ(gotDetail.distances, wantDetail.distances)
                << where0;
            EXPECT_EQ(gotDetail.margin(), wantDetail.margin())
                << where0;
            EXPECT_EQ(view.memory().minPairwiseDistance(),
                      am.minPairwiseDistance())
                << where0;

            std::remove(path.c_str());
        }
    }
}

TEST(ModelRoundTripPropertyTest, SideMemoriesSurviveTheTrip)
{
    Rng rng(0x1D157ULL);
    const std::size_t dim = 250;
    const AssociativeMemory am =
        buildModel(dim, 6, rng, StoreLayout{});
    const hdham::ItemMemory items(27, dim, 0xABCDULL);
    const hdham::LevelItemMemory levels(21, dim, 0xBEEFULL);
    modelfile::SaveOptions opts;
    opts.items = &items;
    opts.levels = &levels;
    const std::string path = ::testing::TempDir() + "rt_items.hdc";
    modelfile::save(path, am, opts);
    modelfile::ModelView view(path);
    ASSERT_TRUE(view.hasItemMemory());
    const hdham::ItemMemory reloaded = view.itemMemory();
    ASSERT_EQ(reloaded.size(), items.size());
    ASSERT_EQ(reloaded.dim(), items.dim());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(reloaded[i], items[i]) << "symbol " << i;
    ASSERT_TRUE(view.hasLevelMemory());
    const hdham::LevelItemMemory relevels = view.levelMemory();
    ASSERT_EQ(relevels.levels(), levels.levels());
    for (std::size_t i = 0; i < levels.levels(); ++i)
        EXPECT_EQ(relevels[i], levels[i]) << "level " << i;
    std::remove(path.c_str());
}

} // namespace

/**
 * @file
 * Unit tests for the streaming statistics accumulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/random.hh"
#include "core/stats.hh"

namespace
{

using hdham::Rng;
using hdham::RunningStats;

TEST(RunningStatsTest, StartsEmpty)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
}

TEST(RunningStatsTest, SingleValue)
{
    RunningStats stats;
    stats.add(3.5);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
    EXPECT_DOUBLE_EQ(stats.min(), 3.5);
    EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, KnownSmallSample)
{
    RunningStats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Unbiased variance of this classic sample is 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MatchesTwoPassComputation)
{
    Rng rng(1);
    RunningStats stats;
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.nextGaussian() * 3.0 + 10.0;
        values.push_back(x);
        stats.add(x);
    }
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    const double mean = sum / values.size();
    double sq = 0.0;
    for (const double v : values)
        sq += (v - mean) * (v - mean);
    EXPECT_NEAR(stats.mean(), mean, 1e-9);
    EXPECT_NEAR(stats.variance(), sq / (values.size() - 1), 1e-6);
}

TEST(RunningStatsTest, HandlesNegativeValues)
{
    RunningStats stats;
    stats.add(-5.0);
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), -5.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, PercentilesOverRetainedSamples)
{
    RunningStats stats(true);
    for (int i = 100; i >= 0; --i)
        stats.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.25), 25.0);
}

TEST(RunningStatsTest, StddevIsSqrtVariance)
{
    RunningStats stats;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        stats.add(x);
    EXPECT_NEAR(stats.stddev(), std::sqrt(stats.variance()), 1e-12);
}

TEST(RunningStatsTest, PercentileWithoutRetentionThrows)
{
    RunningStats stats; // keepSamples defaults to false
    stats.add(1.0);
    EXPECT_THROW(stats.percentile(0.5), std::logic_error);
}

TEST(RunningStatsTest, PercentileOfEmptySamplerThrows)
{
    RunningStats stats(true);
    EXPECT_THROW(stats.percentile(0.5), std::logic_error);
}

TEST(RunningStatsTest, PercentileRejectsOutOfRangeQuantile)
{
    RunningStats stats(true);
    stats.add(1.0);
    EXPECT_THROW(stats.percentile(-0.01), std::invalid_argument);
    EXPECT_THROW(stats.percentile(1.01), std::invalid_argument);
    const double nan = std::nan("");
    EXPECT_THROW(stats.percentile(nan), std::invalid_argument);
}

TEST(RunningStatsTest, PercentileOfSingleSample)
{
    RunningStats stats(true);
    stats.add(42.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 42.0);
}

TEST(RunningStatsTest, PercentileOfAllEqualSamples)
{
    RunningStats stats(true);
    for (int i = 0; i < 100; ++i)
        stats.add(7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.95), 7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 7.0);
}

using hdham::bucketQuantile;
using hdham::FixedBucketHistogram;

TEST(BucketQuantileTest, EmptyThrows)
{
    EXPECT_THROW(bucketQuantile({1.0, 2.0}, {0, 0}, 0, 0.0, 0.0, 0.5),
                 std::logic_error);
}

TEST(BucketQuantileTest, RejectsOutOfRangeQuantile)
{
    EXPECT_THROW(bucketQuantile({1.0}, {1}, 0, 0.5, 0.5, -0.1),
                 std::invalid_argument);
    EXPECT_THROW(bucketQuantile({1.0}, {1}, 0, 0.5, 0.5, 1.1),
                 std::invalid_argument);
}

TEST(BucketQuantileTest, OverflowOnlyReturnsMax)
{
    // Every observation above the last bound: interior quantiles
    // report the exact max (the only honest value available), and
    // the extrema stay exact.
    EXPECT_DOUBLE_EQ(
        bucketQuantile({1.0}, {0}, 5, 10.0, 20.0, 0.5), 20.0);
    EXPECT_DOUBLE_EQ(
        bucketQuantile({1.0}, {0}, 5, 10.0, 20.0, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(
        bucketQuantile({1.0}, {0}, 5, 10.0, 20.0, 1.0), 20.0);
}

TEST(FixedBucketHistogramTest, RejectsBadBounds)
{
    EXPECT_THROW(FixedBucketHistogram({}), std::invalid_argument);
    EXPECT_THROW(FixedBucketHistogram({1.0, 1.0}),
                 std::invalid_argument);
    EXPECT_THROW(FixedBucketHistogram({2.0, 1.0}),
                 std::invalid_argument);
}

TEST(FixedBucketHistogramTest, GeometricLadder)
{
    const FixedBucketHistogram h =
        FixedBucketHistogram::geometric(1.0, 2.0, 4);
    ASSERT_EQ(h.buckets(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketBound(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketBound(3), 8.0);
}

TEST(FixedBucketHistogramTest, QuantileOfEmptyThrows)
{
    const FixedBucketHistogram h({1.0, 2.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_THROW(h.quantile(0.5), std::logic_error);
}

TEST(FixedBucketHistogramTest, SingleSampleIsEveryQuantile)
{
    FixedBucketHistogram h({10.0, 100.0, 1000.0});
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
}

TEST(FixedBucketHistogramTest, AllEqualSamplesStayExact)
{
    FixedBucketHistogram h({10.0, 100.0, 1000.0});
    for (int i = 0; i < 1000; ++i)
        h.add(55.0);
    // Clamping to the exact [min, max] beats raw interpolation when
    // the whole distribution is one point.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 55.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 55.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 55.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 55.0);
}

TEST(FixedBucketHistogramTest, EdgeQuantilesAreExactExtrema)
{
    FixedBucketHistogram h =
        FixedBucketHistogram::geometric(1.0, 2.0, 12);
    for (const double x : {3.0, 17.0, 101.0, 999.0})
        h.add(x);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 999.0);
    const double median = h.quantile(0.5);
    EXPECT_GE(median, 3.0);
    EXPECT_LE(median, 999.0);
}

TEST(FixedBucketHistogramTest, BoundaryValueLandsInLowerBucket)
{
    FixedBucketHistogram h({1.0, 2.0, 4.0});
    h.add(2.0); // exactly on a bound: bucket i holds x <= bounds[i]
    EXPECT_EQ(h.bucketHits(1), 1u);
    EXPECT_EQ(h.bucketHits(2), 0u);
}

TEST(FixedBucketHistogramTest, OverflowBucketCountsAndReportsMax)
{
    FixedBucketHistogram h({1.0, 2.0});
    h.add(0.5);
    h.add(100.0);
    h.add(200.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 300.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 200.0);
    // The 2/3 rank falls in the overflow bucket -> exact max.
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 200.0);
}

TEST(FixedBucketHistogramTest, QuantilesTrackKnownDistribution)
{
    // 1..1000 into a fine geometric ladder: interpolated quantiles
    // should stay within a bucket's width of the exact answer.
    FixedBucketHistogram h =
        FixedBucketHistogram::geometric(1.0, 1.25, 40);
    for (int i = 1; i <= 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 500.0, 125.0);
    EXPECT_NEAR(h.quantile(0.95), 950.0, 240.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

} // namespace

/**
 * @file
 * Unit tests for the streaming statistics accumulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/random.hh"
#include "core/stats.hh"

namespace
{

using hdham::Rng;
using hdham::RunningStats;

TEST(RunningStatsTest, StartsEmpty)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
}

TEST(RunningStatsTest, SingleValue)
{
    RunningStats stats;
    stats.add(3.5);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
    EXPECT_DOUBLE_EQ(stats.min(), 3.5);
    EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(RunningStatsTest, KnownSmallSample)
{
    RunningStats stats;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(x);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Unbiased variance of this classic sample is 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MatchesTwoPassComputation)
{
    Rng rng(1);
    RunningStats stats;
    std::vector<double> values;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.nextGaussian() * 3.0 + 10.0;
        values.push_back(x);
        stats.add(x);
    }
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    const double mean = sum / values.size();
    double sq = 0.0;
    for (const double v : values)
        sq += (v - mean) * (v - mean);
    EXPECT_NEAR(stats.mean(), mean, 1e-9);
    EXPECT_NEAR(stats.variance(), sq / (values.size() - 1), 1e-6);
}

TEST(RunningStatsTest, HandlesNegativeValues)
{
    RunningStats stats;
    stats.add(-5.0);
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), -5.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, PercentilesOverRetainedSamples)
{
    RunningStats stats(true);
    for (int i = 100; i >= 0; --i)
        stats.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.25), 25.0);
}

TEST(RunningStatsTest, StddevIsSqrtVariance)
{
    RunningStats stats;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        stats.add(x);
    EXPECT_NEAR(stats.stddev(), std::sqrt(stats.variance()), 1e-12);
}

} // namespace

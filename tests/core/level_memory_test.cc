/**
 * @file
 * Unit tests for the continuous (level) item memory.
 */

#include <gtest/gtest.h>

#include "core/level_memory.hh"

namespace
{

using hdham::LevelItemMemory;

TEST(LevelMemoryTest, RejectsDegenerateLevelCount)
{
    EXPECT_THROW(LevelItemMemory(0, 100, 1), std::invalid_argument);
    EXPECT_THROW(LevelItemMemory(1, 100, 1), std::invalid_argument);
}

TEST(LevelMemoryTest, ShapeAndDeterminism)
{
    LevelItemMemory a(21, 2048, 7), b(21, 2048, 7);
    EXPECT_EQ(a.levels(), 21u);
    EXPECT_EQ(a.dim(), 2048u);
    for (std::size_t level = 0; level < 21; ++level)
        EXPECT_EQ(a[level], b[level]);
}

TEST(LevelMemoryTest, DistanceIsProportionalToLevelSeparation)
{
    const std::size_t dim = 10000, levels = 21;
    LevelItemMemory mem(levels, dim, 3);
    const double step =
        static_cast<double>(dim) / 2.0 / (levels - 1);
    for (std::size_t i = 0; i < levels; ++i) {
        for (std::size_t j = i; j < levels; ++j) {
            const double expect = step * static_cast<double>(j - i);
            EXPECT_NEAR(mem[i].hamming(mem[j]), expect,
                        0.05 * expect + 2.0)
                << "levels " << i << "," << j;
        }
    }
}

TEST(LevelMemoryTest, EndpointsAreNearlyOrthogonal)
{
    LevelItemMemory mem(21, 10000, 4);
    EXPECT_NEAR(mem[0].hamming(mem[20]), 5000.0, 20.0);
}

TEST(LevelMemoryTest, AdjacentLevelsAreHighlySimilar)
{
    LevelItemMemory mem(21, 10000, 5);
    for (std::size_t level = 0; level + 1 < 21; ++level)
        EXPECT_LT(mem[level].hamming(mem[level + 1]), 300u);
}

TEST(LevelMemoryTest, EncodeQuantizesAndClamps)
{
    LevelItemMemory mem(11, 512, 6);
    EXPECT_EQ(&mem.encode(0.0, 0.0, 1.0), &mem[0]);
    EXPECT_EQ(&mem.encode(1.0, 0.0, 1.0), &mem[10]);
    EXPECT_EQ(&mem.encode(0.5, 0.0, 1.0), &mem[5]);
    EXPECT_EQ(&mem.encode(-3.0, 0.0, 1.0), &mem[0]);
    EXPECT_EQ(&mem.encode(42.0, 0.0, 1.0), &mem[10]);
}

TEST(LevelMemoryTest, EncodeHonorsCustomRange)
{
    LevelItemMemory mem(5, 256, 7);
    EXPECT_EQ(&mem.encode(-10.0, -10.0, 10.0), &mem[0]);
    EXPECT_EQ(&mem.encode(0.0, -10.0, 10.0), &mem[2]);
    EXPECT_EQ(&mem.encode(10.0, -10.0, 10.0), &mem[4]);
}

TEST(LevelMemoryTest, TwoLevelMemoryIsAPair)
{
    LevelItemMemory mem(2, 10000, 8);
    EXPECT_NEAR(mem[0].hamming(mem[1]), 5000.0, 20.0);
}

} // namespace

/**
 * @file
 * Lifecycle suite for the immutable epoch-swapped snapshot layer.
 *
 * Pins the ownership contract of core/snapshot.hh: publication holds
 * one reference and each SnapshotRef one more; a retired snapshot is
 * freed exactly when its last in-flight reference drops; the builder
 * reproduces its seed store bit for bit; and fromFile serves both
 * on-disk formats identically to the in-RAM store they were saved
 * from.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/model_file.hh"
#include "core/random.hh"
#include "core/serialize.hh"
#include "core/snapshot.hh"
#include "core/trainable_memory.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::ItemMemory;
using hdham::PruneMode;
using hdham::Rng;
using hdham::ScanPolicy;
using hdham::TrainableMemory;
using hdham::snapshot::MemorySnapshot;
using hdham::snapshot::SnapshotBuilder;
using hdham::snapshot::SnapshotRef;
using hdham::snapshot::SnapshotSource;

constexpr std::size_t kDim = 512;

AssociativeMemory
randomMemory(std::size_t classes, std::uint64_t seed)
{
    Rng rng(seed);
    AssociativeMemory am(kDim);
    for (std::size_t i = 0; i < classes; ++i)
        am.store(Hypervector::random(kDim, rng),
                 "class" + std::to_string(i));
    return am;
}

/** Scoped temp file that cleans up after itself. */
struct TempFile
{
    explicit TempFile(const std::string &name)
        : path(::testing::TempDir() + name)
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

TEST(SnapshotSourceTest, EmptyBeforeFirstPublish)
{
    SnapshotSource source;
    EXPECT_FALSE(source.hasSnapshot());
    const SnapshotRef ref = source.acquire();
    EXPECT_FALSE(static_cast<bool>(ref));
    EXPECT_EQ(source.swaps(), 0u);
}

TEST(SnapshotSourceTest, PublishStampsSequenceNumbers)
{
    SnapshotSource source;
    EXPECT_EQ(source.publish(
                  MemorySnapshot::fromMemory(randomMemory(3, 1))),
              1u);
    EXPECT_EQ(source.acquire()->sequence(), 1u);
    EXPECT_EQ(source.publish(
                  MemorySnapshot::fromMemory(randomMemory(3, 2))),
              2u);
    EXPECT_EQ(source.acquire()->sequence(), 2u);
    EXPECT_EQ(source.swaps(), 2u);
}

TEST(SnapshotSourceTest, RetiredSnapshotLivesUntilLastRefDrops)
{
    const std::size_t baseline = SnapshotSource::liveSnapshots();
    SnapshotSource source;
    source.publish(MemorySnapshot::fromMemory(randomMemory(3, 1)));
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);

    SnapshotRef pinned = source.acquire();
    ASSERT_TRUE(static_cast<bool>(pinned));
    EXPECT_EQ(pinned->sequence(), 1u);

    // Swapping retires snapshot 1 from the source, but the pin keeps
    // it alive -- and still fully usable.
    source.publish(MemorySnapshot::fromMemory(randomMemory(4, 2)));
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 2);
    EXPECT_EQ(pinned->sequence(), 1u);
    EXPECT_EQ(pinned->classes(), 3u);

    pinned.reset();
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);
}

TEST(SnapshotSourceTest, ClonedRefsEachHoldTheSnapshot)
{
    const std::size_t baseline = SnapshotSource::liveSnapshots();
    SnapshotSource source;
    source.publish(MemorySnapshot::fromMemory(randomMemory(2, 7)));
    SnapshotRef a = source.acquire();
    SnapshotRef b = a.clone();
    source.publish(MemorySnapshot::fromMemory(randomMemory(2, 8)));
    a.reset();
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 2);
    EXPECT_EQ(b->sequence(), 1u);
    b.reset();
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);
}

TEST(SnapshotSourceTest, PinnedRefOutlivesTheSource)
{
    const std::size_t baseline = SnapshotSource::liveSnapshots();
    SnapshotRef pinned;
    {
        SnapshotSource source;
        source.publish(
            MemorySnapshot::fromMemory(randomMemory(3, 9)));
        pinned = source.acquire();
    }
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);
    EXPECT_EQ(pinned->classes(), 3u);
    pinned.reset();
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline);
}

TEST(SnapshotTest, FreezesPolicyAndSink)
{
    hdham::metrics::QueryMetrics sink;
    MemorySnapshot::Options opts;
    opts.policy.prune = PruneMode::On;
    opts.policy.cascadePrefix = 128;
    opts.sink = &sink;
    const auto snap =
        MemorySnapshot::fromMemory(randomMemory(5, 3), opts);
    EXPECT_EQ(snap->memory().scanPolicy().prune, PruneMode::On);
    EXPECT_EQ(snap->memory().scanPolicy().cascadePrefix, 128u);
    EXPECT_EQ(snap->memory().metricsSink(), &sink);

    Rng rng(11);
    snap->memory().search(Hypervector::random(kDim, rng));
    EXPECT_EQ(sink.queries.value(), 1u);
}

TEST(SnapshotTest, CarriesSideMemories)
{
    ItemMemory items(27, kDim, 0xabcdULL);
    const auto snap = MemorySnapshot::fromMemory(
        randomMemory(3, 4), {}, std::move(items));
    ASSERT_TRUE(snap->hasItemMemory());
    EXPECT_EQ(snap->itemMemory().size(), 27u);
    EXPECT_FALSE(snap->hasLevelMemory());
    EXPECT_FALSE(snap->mapped());
    EXPECT_EQ(snap->modelPath(), "");
}

TEST(SnapshotBuilderTest, ReproducesTrainableMemoryExactly)
{
    Rng rng(21);
    TrainableMemory trainable(kDim, 99);
    SnapshotBuilder builder(kDim, 99);
    for (std::size_t c = 0; c < 4; ++c) {
        trainable.addClass("c" + std::to_string(c));
        builder.addClass("c" + std::to_string(c));
        for (int s = 0; s < 3; ++s) {
            const Hypervector hv = Hypervector::random(kDim, rng);
            trainable.addSample(c, hv);
            builder.addSample(c, hv);
        }
    }
    const AssociativeMemory expected = trainable.snapshot();
    const auto snap = builder.build();
    ASSERT_EQ(snap->classes(), expected.size());
    for (std::size_t c = 0; c < expected.size(); ++c) {
        EXPECT_EQ(snap->memory().vectorOf(c).hamming(
                      expected.vectorOf(c)),
                  0u)
            << "class " << c;
        EXPECT_EQ(snap->memory().labelOf(c), expected.labelOf(c));
    }
}

TEST(SnapshotBuilderTest, SeededFromSnapshotIsBitIdentical)
{
    const AssociativeMemory seedMem = randomMemory(6, 31);
    const auto seedSnap = MemorySnapshot::fromMemory(
        randomMemory(6, 31), {},
        ItemMemory(27, kDim, 0x11ULL));
    SnapshotBuilder builder(*seedSnap);
    EXPECT_EQ(builder.dim(), kDim);
    EXPECT_EQ(builder.classes(), 6u);
    const auto rebuilt = builder.build();
    ASSERT_EQ(rebuilt->classes(), seedMem.size());
    for (std::size_t c = 0; c < seedMem.size(); ++c) {
        EXPECT_EQ(rebuilt->memory().vectorOf(c).hamming(
                      seedMem.vectorOf(c)),
                  0u)
            << "class " << c;
        EXPECT_EQ(rebuilt->memory().labelOf(c),
                  seedMem.labelOf(c));
    }
    // Side memories ride along into every future publish.
    EXPECT_TRUE(rebuilt->hasItemMemory());
}

TEST(SnapshotBuilderTest, PublishRecordsStats)
{
    Rng rng(41);
    SnapshotSource source;
    SnapshotBuilder builder(kDim);
    builder.addClass("a");
    builder.addSample(0, Hypervector::random(kDim, rng));
    EXPECT_EQ(builder.publish(source), 1u);
    const SnapshotBuilder::PublishStats stats =
        builder.lastPublish();
    EXPECT_EQ(stats.sequence, 1u);
    EXPECT_GE(stats.buildUs, 0.0);
    EXPECT_GE(stats.swapUs, 0.0);
    EXPECT_EQ(source.acquire()->classes(), 1u);
}

TEST(TrainableAssimilateTest, MergesWithinThresholdElseCreates)
{
    Rng rng(51);
    TrainableMemory trainable(kDim, 7);
    const Hypervector proto = Hypervector::random(kDim, rng);
    trainable.addClass("seed");
    trainable.addSample(0, proto);

    // A near-duplicate (flip a handful of bits) merges into class 0.
    Hypervector near = proto;
    // Flipping via rebundle: XOR with a sparse flip mask built from
    // the prototype itself is overkill; construct from words.
    std::vector<std::uint64_t> words(proto.data(),
                                     proto.data() + proto.words());
    words[0] ^= 0x7ULL; // 3 bits away
    near = Hypervector::fromWords(kDim, words.data());
    EXPECT_EQ(trainable.assimilate(near, "ignored", 10), 0u);
    EXPECT_EQ(trainable.classes(), 1u);
    EXPECT_EQ(trainable.sampleCount(0), 2u);

    // A far vector (expected distance ~kDim/2) exceeds the threshold
    // and creates a new labeled class.
    const Hypervector far = Hypervector::random(kDim, rng);
    const std::size_t id = trainable.assimilate(far, "novel", 10);
    EXPECT_EQ(id, 1u);
    EXPECT_EQ(trainable.labelOf(1), "novel");
    EXPECT_EQ(trainable.sampleCount(1), 1u);

    Rng other(5);
    EXPECT_THROW(trainable.assimilate(
                     Hypervector::random(kDim / 2, other), "x", 1),
                 std::invalid_argument);
}

TEST(TrainableAssimilateTest, TiesResolveToLowestClassId)
{
    Rng rng(61);
    TrainableMemory trainable(kDim, 7);
    const Hypervector proto = Hypervector::random(kDim, rng);
    // Two identical prototypes: the merge must pick class 0.
    trainable.addClass("first");
    trainable.addSample(0, proto);
    trainable.addClass("second");
    trainable.addSample(1, proto);
    EXPECT_EQ(trainable.assimilate(proto, "x", 0), 0u);
}

TEST(SnapshotFileTest, FromFileServesBothFormatsIdentically)
{
    const AssociativeMemory original = randomMemory(8, 71);
    TempFile v1("snapshot_test_model_v1.hdc");
    TempFile legacy("snapshot_test_model_legacy.hdc");
    hdham::modelfile::save(v1.path, original);
    hdham::serialize::saveMemory(legacy.path, original);

    const auto mappedSnap = MemorySnapshot::fromFile(v1.path);
    const auto ownedSnap = MemorySnapshot::fromFile(legacy.path);
    EXPECT_TRUE(mappedSnap->mapped());
    EXPECT_FALSE(ownedSnap->mapped());
    EXPECT_EQ(mappedSnap->modelPath(), v1.path);
    EXPECT_EQ(ownedSnap->modelPath(), legacy.path);

    Rng rng(81);
    for (int q = 0; q < 16; ++q) {
        const Hypervector query = Hypervector::random(kDim, rng);
        const auto expected = original.search(query);
        const auto fromMapped = mappedSnap->memory().search(query);
        const auto fromOwned = ownedSnap->memory().search(query);
        EXPECT_EQ(fromMapped.classId, expected.classId);
        EXPECT_EQ(fromMapped.bestDistance, expected.bestDistance);
        EXPECT_EQ(fromOwned.classId, expected.classId);
        EXPECT_EQ(fromOwned.bestDistance, expected.bestDistance);
    }
}

TEST(SnapshotFileTest, MappedSnapshotSurvivesPublishCycle)
{
    const std::size_t baseline = SnapshotSource::liveSnapshots();
    const AssociativeMemory original = randomMemory(5, 91);
    TempFile file("snapshot_test_mapped_publish.hdc");
    hdham::modelfile::save(file.path, original);

    SnapshotSource source;
    source.publish(MemorySnapshot::fromFile(file.path));
    SnapshotRef pinned = source.acquire();
    EXPECT_TRUE(pinned->mapped());

    // Seed a builder from the mapped model, grow it, publish: the
    // mapped snapshot stays pinned and readable while retired.
    SnapshotBuilder builder(*pinned);
    Rng rng(92);
    const std::size_t id = builder.addClass("extra");
    builder.addSample(id, Hypervector::random(kDim, rng));
    builder.publish(source);

    EXPECT_EQ(source.acquire()->classes(), 6u);
    EXPECT_EQ(pinned->classes(), 5u);
    Rng qrng(93);
    const Hypervector query = Hypervector::random(kDim, qrng);
    EXPECT_EQ(pinned->memory().search(query).classId,
              original.search(query).classId);
    pinned.reset();
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);
}

} // namespace

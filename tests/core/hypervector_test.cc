/**
 * @file
 * Unit tests for the bit-packed hypervector.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/hypervector.hh"
#include "core/random.hh"

namespace
{

using hdham::Hypervector;
using hdham::Rng;

TEST(HypervectorTest, DefaultIsEmpty)
{
    Hypervector hv;
    EXPECT_EQ(hv.dim(), 0u);
    EXPECT_EQ(hv.words(), 0u);
}

TEST(HypervectorTest, ZeroConstructed)
{
    Hypervector hv(130);
    EXPECT_EQ(hv.dim(), 130u);
    EXPECT_EQ(hv.words(), 3u);
    EXPECT_EQ(hv.popcount(), 0u);
    for (std::size_t i = 0; i < 130; ++i)
        EXPECT_FALSE(hv.get(i));
}

TEST(HypervectorTest, SetGetFlip)
{
    Hypervector hv(100);
    hv.set(0, true);
    hv.set(63, true);
    hv.set(64, true);
    hv.set(99, true);
    EXPECT_TRUE(hv.get(0));
    EXPECT_TRUE(hv.get(63));
    EXPECT_TRUE(hv.get(64));
    EXPECT_TRUE(hv.get(99));
    EXPECT_EQ(hv.popcount(), 4u);
    hv.flip(63);
    EXPECT_FALSE(hv.get(63));
    hv.set(0, false);
    EXPECT_FALSE(hv.get(0));
    EXPECT_EQ(hv.popcount(), 2u);
}

TEST(HypervectorTest, FromStringRoundTrip)
{
    const std::string bits = "1010011100010";
    Hypervector hv = Hypervector::fromString(bits);
    EXPECT_EQ(hv.dim(), bits.size());
    EXPECT_EQ(hv.toString(), bits);
}

TEST(HypervectorTest, FromStringRejectsGarbage)
{
    EXPECT_THROW(Hypervector::fromString("10x1"),
                 std::invalid_argument);
}

TEST(HypervectorTest, RandomHasRoughlyHalfOnes)
{
    Rng rng(1);
    Hypervector hv = Hypervector::random(10000, rng);
    EXPECT_NEAR(hv.popcount(), 5000.0, 250.0);
}

TEST(HypervectorTest, RandomBalancedHasExactlyHalfOnes)
{
    Rng rng(2);
    for (std::size_t dim : {10u, 64u, 100u, 10000u}) {
        Hypervector hv = Hypervector::randomBalanced(dim, rng);
        EXPECT_EQ(hv.popcount(), dim / 2);
    }
}

TEST(HypervectorTest, RandomCleanTail)
{
    // Dimensions not divisible by 64 must keep the spare bits zero,
    // or popcount-based distances would be wrong.
    Rng rng(3);
    Hypervector hv = Hypervector::random(70, rng);
    std::size_t manual = 0;
    for (std::size_t i = 0; i < 70; ++i)
        manual += hv.get(i);
    EXPECT_EQ(hv.popcount(), manual);
}

TEST(HypervectorTest, HammingBasics)
{
    Hypervector a = Hypervector::fromString("110010");
    Hypervector b = Hypervector::fromString("010011");
    EXPECT_EQ(a.hamming(b), 2u);
    EXPECT_EQ(b.hamming(a), 2u);
    EXPECT_EQ(a.hamming(a), 0u);
}

TEST(HypervectorTest, HammingPrefix)
{
    Hypervector a = Hypervector::fromString("11001011");
    Hypervector b = Hypervector::fromString("00001011");
    EXPECT_EQ(a.hammingPrefix(b, 0), 0u);
    EXPECT_EQ(a.hammingPrefix(b, 1), 1u);
    EXPECT_EQ(a.hammingPrefix(b, 2), 2u);
    EXPECT_EQ(a.hammingPrefix(b, 8), 2u);
}

TEST(HypervectorTest, HammingPrefixEqualsFullAtD)
{
    Rng rng(4);
    for (std::size_t dim : {63u, 64u, 65u, 1000u}) {
        Hypervector a = Hypervector::random(dim, rng);
        Hypervector b = Hypervector::random(dim, rng);
        EXPECT_EQ(a.hammingPrefix(b, dim), a.hamming(b));
    }
}

TEST(HypervectorTest, HammingPrefixIsMonotone)
{
    Rng rng(5);
    Hypervector a = Hypervector::random(500, rng);
    Hypervector b = Hypervector::random(500, rng);
    std::size_t prev = 0;
    for (std::size_t p = 0; p <= 500; p += 13) {
        const std::size_t cur = a.hammingPrefix(b, p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

TEST(HypervectorTest, XorSelfInverse)
{
    Rng rng(6);
    Hypervector a = Hypervector::random(1000, rng);
    Hypervector b = Hypervector::random(1000, rng);
    EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(HypervectorTest, XorZeroIsIdentity)
{
    Rng rng(7);
    Hypervector a = Hypervector::random(200, rng);
    Hypervector zero(200);
    EXPECT_EQ(a ^ zero, a);
}

TEST(HypervectorTest, XorWithSelfIsZero)
{
    Rng rng(8);
    Hypervector a = Hypervector::random(200, rng);
    EXPECT_EQ((a ^ a).popcount(), 0u);
}

TEST(HypervectorTest, InPlaceXorMatchesBinary)
{
    Rng rng(9);
    Hypervector a = Hypervector::random(300, rng);
    Hypervector b = Hypervector::random(300, rng);
    Hypervector c = a;
    c ^= b;
    EXPECT_EQ(c, a ^ b);
}

TEST(HypervectorTest, RotatedPreservesPopcount)
{
    Rng rng(10);
    for (std::size_t dim : {64u, 100u, 128u, 10000u}) {
        Hypervector a = Hypervector::random(dim, rng);
        for (std::size_t amt : {1u, 7u, 63u, 64u, 65u}) {
            EXPECT_EQ(a.rotated(amt).popcount(), a.popcount())
                << "dim=" << dim << " amt=" << amt;
        }
    }
}

TEST(HypervectorTest, RotateByDimIsIdentity)
{
    Rng rng(11);
    for (std::size_t dim : {64u, 100u, 128u, 1000u}) {
        Hypervector a = Hypervector::random(dim, rng);
        EXPECT_EQ(a.rotated(dim), a);
        EXPECT_EQ(a.rotated(0), a);
    }
}

TEST(HypervectorTest, RotateComposition)
{
    Rng rng(12);
    Hypervector a = Hypervector::random(640, rng);
    EXPECT_EQ(a.rotated(3).rotated(5), a.rotated(8));
}

TEST(HypervectorTest, RotateMatchesBitwiseDefinition)
{
    Rng rng(13);
    for (std::size_t dim : {64u, 100u, 128u, 192u}) {
        Hypervector a = Hypervector::random(dim, rng);
        for (std::size_t amt : {1u, 5u, 64u, 65u}) {
            Hypervector r = a.rotated(amt);
            for (std::size_t i = 0; i < dim; ++i)
                EXPECT_EQ(r.get((i + amt) % dim), a.get(i))
                    << "dim=" << dim << " amt=" << amt << " i=" << i;
        }
    }
}

TEST(HypervectorTest, RotatedIsNearlyOrthogonal)
{
    Rng rng(14);
    Hypervector a = Hypervector::random(10000, rng);
    const double dist = a.hamming(a.rotated(1));
    EXPECT_NEAR(dist, 5000.0, 300.0);
}

TEST(HypervectorTest, InjectErrorsFlipsExactCount)
{
    Rng rng(15);
    for (std::size_t count : {0u, 1u, 10u, 500u, 1000u}) {
        Hypervector a = Hypervector::random(1000, rng);
        Hypervector b = a;
        b.injectErrors(count, rng);
        EXPECT_EQ(a.hamming(b), count);
    }
}

TEST(HypervectorTest, InjectAllErrorsInvertsEverything)
{
    Rng rng(16);
    Hypervector a = Hypervector::random(128, rng);
    Hypervector b = a;
    b.injectErrors(128, rng);
    EXPECT_EQ(a.hamming(b), 128u);
}

TEST(HypervectorTest, EqualityChecksDimension)
{
    Hypervector a(64), b(65);
    EXPECT_NE(a, b);
}

class HammingMetricTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(HammingMetricTest, TriangleInequality)
{
    const std::size_t dim = GetParam();
    Rng rng(17 + dim);
    for (int i = 0; i < 20; ++i) {
        Hypervector a = Hypervector::random(dim, rng);
        Hypervector b = Hypervector::random(dim, rng);
        Hypervector c = Hypervector::random(dim, rng);
        EXPECT_LE(a.hamming(c), a.hamming(b) + b.hamming(c));
    }
}

TEST_P(HammingMetricTest, RandomPairsNearHalfDim)
{
    const std::size_t dim = GetParam();
    Rng rng(18 + dim);
    Hypervector a = Hypervector::random(dim, rng);
    Hypervector b = Hypervector::random(dim, rng);
    // Concentration: random pairs sit within ~6 sigma of D/2.
    const double sigma = std::sqrt(dim) / 2.0;
    EXPECT_NEAR(a.hamming(b), dim / 2.0, 6.0 * sigma + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, HammingMetricTest,
                         ::testing::Values(64, 100, 512, 1000, 4096,
                                           10000));

} // namespace

/**
 * @file
 * Unit tests for the span tracing subsystem (core/trace.hh):
 * disabled-path inertness, nesting and self-time accounting, batch
 * scope propagation and restoration, exact overflow drop counting,
 * per-thread buffer registration, summary aggregation, and
 * bit-identity of the traced D-HAM search path.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/parallel_for.hh"
#include "core/random.hh"
#include "core/trace.hh"
#include "ham/d_ham.hh"

namespace
{

using namespace hdham;

/** setActive(nullptr) on scope exit, even on assertion failure. */
class ActiveTracer
{
  public:
    explicit ActiveTracer(trace::Tracer &tracer)
    {
        trace::setActive(&tracer);
    }
    ~ActiveTracer() { trace::setActive(nullptr); }
};

TEST(TraceTest, DisabledByDefault)
{
    ASSERT_EQ(trace::activeTracer(), nullptr);
    EXPECT_FALSE(trace::enabled());
    {
        TRACE_SPAN("ignored");
        TRACE_BATCH("also ignored");
    }
    // A fresh tracer never saw those spans.
    trace::Tracer tracer;
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
    EXPECT_EQ(tracer.threadsSeen(), 0u);
}

TEST(TraceTest, RecordsNestingDepthAndOrder)
{
    trace::Tracer tracer;
    {
        ActiveTracer active(tracer);
        TRACE_SPAN("outer");
        {
            TRACE_SPAN("inner");
            TRACE_SPAN("innermost");
        }
    }
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 3u);
    // Completion order: innermost closes first, outer last.
    EXPECT_STREQ(events[0].second.name, "innermost");
    EXPECT_STREQ(events[1].second.name, "inner");
    EXPECT_STREQ(events[2].second.name, "outer");
    EXPECT_EQ(events[0].second.depth, 2u);
    EXPECT_EQ(events[1].second.depth, 1u);
    EXPECT_EQ(events[2].second.depth, 0u);
    // All on the same thread track.
    EXPECT_EQ(events[0].first, events[1].first);
    EXPECT_EQ(events[1].first, events[2].first);
}

TEST(TraceTest, SelfTimeIsDurationMinusDirectChildren)
{
    trace::Tracer tracer;
    {
        ActiveTracer active(tracer);
        TRACE_SPAN("parent");
        {
            TRACE_SPAN("child_a");
        }
        {
            TRACE_SPAN("child_b");
            TRACE_SPAN("grandchild");
        }
    }
    // Completion order: child_a's block closes before child_b's,
    // and the grandchild closes before its parent child_b.
    const auto events = tracer.events();
    ASSERT_EQ(events.size(), 4u);
    const trace::Event &childA = events[0].second;
    const trace::Event &grandchild = events[1].second;
    const trace::Event &childB = events[2].second;
    const trace::Event &parent = events[3].second;
    ASSERT_STREQ(childA.name, "child_a");
    ASSERT_STREQ(grandchild.name, "grandchild");
    ASSERT_STREQ(childB.name, "child_b");
    ASSERT_STREQ(parent.name, "parent");

    // A leaf owns all of its time.
    EXPECT_DOUBLE_EQ(childA.selfUs, childA.durUs);
    // Only *direct* children subtract: the grandchild reduces
    // child_b's self time, not the parent's.
    EXPECT_DOUBLE_EQ(childB.selfUs, childB.durUs - grandchild.durUs);
    EXPECT_DOUBLE_EQ(parent.selfUs,
                     parent.durUs - (childA.durUs + childB.durUs));
    // Containment: children start no earlier and end no later.
    EXPECT_GE(childA.startUs, parent.startUs);
    EXPECT_LE(childB.startUs + childB.durUs,
              parent.startUs + parent.durUs);
}

TEST(TraceTest, BatchScopeSetsAndRestoresScope)
{
    trace::Tracer tracer;
    {
        ActiveTracer active(tracer);
        EXPECT_EQ(trace::currentContext().scope, 0u);
        {
            TRACE_BATCH("outer batch");
            const std::uint64_t outerScope =
                trace::currentContext().scope;
            EXPECT_GE(outerScope, 1u);
            {
                TRACE_SPAN("in outer");
            }
            {
                TRACE_BATCH("inner batch");
                EXPECT_NE(trace::currentContext().scope, outerScope);
                TRACE_SPAN("in inner");
            }
            // Inner batch ended: the outer scope is live again.
            EXPECT_EQ(trace::currentContext().scope, outerScope);
            TRACE_SPAN("back in outer");
        }
        EXPECT_EQ(trace::currentContext().scope, 0u);
    }

    std::uint64_t outerScope = 0;
    std::uint64_t innerScope = 0;
    for (const auto &[track, event] : tracer.events()) {
        const std::string name = event.name;
        if (name == "in outer" || name == "back in outer") {
            if (outerScope == 0)
                outerScope = event.scope;
            EXPECT_EQ(event.scope, outerScope) << name;
        } else if (name == "in inner") {
            innerScope = event.scope;
        }
    }
    EXPECT_NE(outerScope, 0u);
    EXPECT_NE(innerScope, 0u);
    EXPECT_NE(outerScope, innerScope);
}

TEST(TraceTest, ContextGuardRestoresPreviousScope)
{
    trace::Tracer tracer;
    ActiveTracer active(tracer);
    EXPECT_EQ(trace::currentContext().scope, 0u);
    {
        const trace::ContextGuard guard(trace::Context{42});
        EXPECT_EQ(trace::currentContext().scope, 42u);
        {
            const trace::ContextGuard nested(trace::Context{7});
            EXPECT_EQ(trace::currentContext().scope, 7u);
        }
        EXPECT_EQ(trace::currentContext().scope, 42u);
    }
    EXPECT_EQ(trace::currentContext().scope, 0u);
}

TEST(TraceTest, OverflowDropsCountedExactly)
{
    trace::Tracer tracer(8);
    {
        ActiveTracer active(tracer);
        for (int i = 0; i < 20; ++i) {
            TRACE_SPAN("flood");
        }
    }
    EXPECT_EQ(tracer.eventCount(), 8u);
    EXPECT_EQ(tracer.droppedEvents(), 12u);
    // The stored events are the first eight completions.
    for (const auto &[track, event] : tracer.events())
        EXPECT_STREQ(event.name, "flood");
}

TEST(TraceTest, EachThreadGetsItsOwnBuffer)
{
    trace::Tracer tracer;
    {
        ActiveTracer active(tracer);
        parallelFor(4, 4, [](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                TRACE_SPAN("chunk");
            }
        });
    }
    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.threadsSeen(), 4u);
    EXPECT_EQ(tracer.droppedEvents(), 0u);
}

TEST(TraceTest, SequentialTracersDoNotShareBuffers)
{
    // The thread-local buffer cache is keyed by tracer uid: a second
    // tracer on the same thread must not inherit the first one's
    // buffer (or worse, a dangling pointer to it).
    trace::Tracer first;
    {
        ActiveTracer active(first);
        TRACE_SPAN("first");
    }
    ASSERT_EQ(first.eventCount(), 1u);

    trace::Tracer second;
    {
        ActiveTracer active(second);
        TRACE_SPAN("second");
        TRACE_SPAN("second again");
    }
    EXPECT_EQ(first.eventCount(), 1u);
    ASSERT_EQ(second.eventCount(), 2u);
    for (const auto &[track, event] : second.events())
        EXPECT_TRUE(std::string(event.name).rfind("second", 0) == 0);
}

TEST(TraceTest, SummaryAggregatesPerName)
{
    trace::Tracer tracer;
    {
        ActiveTracer active(tracer);
        for (int i = 0; i < 3; ++i) {
            TRACE_SPAN("repeat");
        }
        TRACE_SPAN("once");
    }
    const auto stats = tracer.summary();
    ASSERT_EQ(stats.size(), 2u);
    // Sorted by name.
    EXPECT_EQ(stats[0].name, "once");
    EXPECT_EQ(stats[1].name, "repeat");
    EXPECT_EQ(stats[0].count, 1u);
    EXPECT_EQ(stats[1].count, 3u);
    for (const auto &s : stats) {
        EXPECT_GE(s.totalUs, s.selfUs);
        EXPECT_GE(s.p95Us, 0.0);
        EXPECT_LE(s.p50Us, s.p95Us + 1e-9);
    }
}

TEST(TraceTest, TracedDHamSearchMatchesUntraced)
{
    ham::DHamConfig cfg;
    cfg.dim = 512;
    ham::DHam untracedHam(cfg);
    ham::DHam tracedHam(cfg);
    Rng rng(99);
    for (int c = 0; c < 16; ++c) {
        const Hypervector hv = Hypervector::random(cfg.dim, rng);
        untracedHam.store(hv);
        tracedHam.store(hv);
    }
    std::vector<Hypervector> queries;
    for (int q = 0; q < 32; ++q)
        queries.push_back(Hypervector::random(cfg.dim, rng));

    const auto expected = untracedHam.searchBatch(queries, 2);

    trace::Tracer tracer;
    std::vector<ham::HamResult> got;
    {
        ActiveTracer active(tracer);
        got = tracedHam.searchBatch(queries, 2);
    }
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t q = 0; q < got.size(); ++q) {
        EXPECT_EQ(got[q].classId, expected[q].classId) << q;
        EXPECT_EQ(got[q].reportedDistance,
                  expected[q].reportedDistance)
            << q;
    }
    // The traced run recorded the split phases.
    bool sawPopcount = false;
    bool sawCompare = false;
    for (const auto &[track, event] : tracer.events()) {
        const std::string name = event.name;
        sawPopcount |= name == "d_ham.popcount";
        sawCompare |= name == "d_ham.compare";
    }
    EXPECT_TRUE(sawPopcount);
    EXPECT_TRUE(sawCompare);
}

} // namespace

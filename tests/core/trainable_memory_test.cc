/**
 * @file
 * Tests for the online-trainable associative memory: incremental
 * learning, snapshot consistency, and continual-learning behavior
 * on the language task.
 */

#include <gtest/gtest.h>

#include "core/trainable_memory.hh"
#include "lang/corpus.hh"
#include "lang/pipeline.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;
using hdham::TrainableMemory;

TEST(TrainableMemoryTest, RejectsZeroDimension)
{
    EXPECT_THROW(TrainableMemory{0}, std::invalid_argument);
}

TEST(TrainableMemoryTest, ClassBookkeeping)
{
    TrainableMemory memory(256);
    EXPECT_EQ(memory.classes(), 0u);
    EXPECT_EQ(memory.addClass("alpha"), 0u);
    EXPECT_EQ(memory.addClass("beta"), 1u);
    EXPECT_EQ(memory.classes(), 2u);
    EXPECT_EQ(memory.labelOf(1), "beta");
    EXPECT_EQ(memory.sampleCount(0), 0u);
}

TEST(TrainableMemoryTest, ValidatesSamples)
{
    TrainableMemory memory(256);
    memory.addClass();
    Rng rng(1);
    EXPECT_THROW(memory.addSample(3, Hypervector::random(256, rng)),
                 std::invalid_argument);
    EXPECT_THROW(memory.prototype(0), std::logic_error);
}

TEST(TrainableMemoryTest, SingleSamplePrototypeIsTheSample)
{
    TrainableMemory memory(512);
    const std::size_t id = memory.addClass("x");
    Rng rng(2);
    const Hypervector hv = Hypervector::random(512, rng);
    memory.addSample(id, hv);
    EXPECT_EQ(memory.prototype(id), hv);
    EXPECT_EQ(memory.sampleCount(id), 1u);
}

TEST(TrainableMemoryTest, PrototypeIsTheRunningMajority)
{
    TrainableMemory memory(1024);
    const std::size_t id = memory.addClass();
    Rng rng(3);
    const Hypervector base = Hypervector::random(1024, rng);
    for (int i = 0; i < 5; ++i) {
        Hypervector noisy = base;
        noisy.injectErrors(100, rng);
        memory.addSample(id, noisy);
    }
    // Majority of five noisy copies is closer to the base than any
    // single copy's expected 100 bits.
    EXPECT_LT(memory.prototype(id).hamming(base), 60u);
}

TEST(TrainableMemoryTest, SnapshotMatchesPrototypes)
{
    TrainableMemory memory(512);
    Rng rng(4);
    for (int c = 0; c < 4; ++c) {
        const std::size_t id =
            memory.addClass("c" + std::to_string(c));
        memory.addSample(id, Hypervector::random(512, rng));
    }
    const AssociativeMemory am = memory.snapshot();
    ASSERT_EQ(am.size(), 4u);
    for (std::size_t id = 0; id < 4; ++id) {
        EXPECT_EQ(am.vectorOf(id), memory.prototype(id));
        EXPECT_EQ(am.labelOf(id), "c" + std::to_string(id));
    }
}

TEST(TrainableMemoryTest, ContinualLearningImprovesAccuracy)
{
    // Train incrementally on growing slices of the language corpus:
    // accuracy after more data must not be worse. This is the
    // "retrain by reprogramming the crossbar once per session"
    // workflow.
    hdham::lang::CorpusConfig corpusCfg;
    corpusCfg.trainChars = 24000;
    corpusCfg.testSentences = 20;
    const hdham::lang::SyntheticCorpus corpus(corpusCfg);
    hdham::lang::PipelineConfig pipeCfg;
    pipeCfg.dim = 2048;
    const hdham::lang::RecognitionPipeline pipeline(corpus, pipeCfg);

    TrainableMemory memory(pipeCfg.dim);
    for (std::size_t lang = 0; lang < 21; ++lang)
        memory.addClass(corpus.labelOf(lang));

    const auto accuracyOf = [&](const AssociativeMemory &am) {
        return pipeline
            .evaluate([&](const Hypervector &query) {
                return am.search(query).classId;
            })
            .accuracy();
    };

    // Session 1: first third of each training text.
    hdham::Rng rng(5);
    const auto feed = [&](double from, double to) {
        for (std::size_t lang = 0; lang < 21; ++lang) {
            const std::string &text = corpus.trainingText(lang);
            const auto a = static_cast<std::size_t>(
                from * static_cast<double>(text.size()));
            const auto b = static_cast<std::size_t>(
                to * static_cast<double>(text.size()));
            hdham::Bundler chunk(pipeCfg.dim);
            pipeline.textEncoder().encodeInto(
                text.substr(a, b - a), chunk);
            // Stream the chunk's trigram majority as one sample
            // batch; finer-grained streaming also works.
            memory.addSample(lang, chunk.majority(rng));
        }
    };
    feed(0.0, 0.05);
    const double early = accuracyOf(memory.snapshot());
    feed(0.05, 0.5);
    feed(0.5, 1.0);
    const double late = accuracyOf(memory.snapshot());
    EXPECT_GT(early, 0.5);       // already useful after 5% of data
    EXPECT_GE(late + 0.02, early); // more data never hurts much
    EXPECT_GT(late, 0.85);
}

} // namespace

/**
 * @file
 * Unit tests for the streaming majority accumulator.
 */

#include <gtest/gtest.h>

#include "core/bundler.hh"
#include "core/hypervector.hh"
#include "core/random.hh"

namespace
{

using hdham::Bundler;
using hdham::Hypervector;
using hdham::Rng;

TEST(BundlerTest, EmptyThrows)
{
    Bundler b(100);
    Rng rng(1);
    EXPECT_EQ(b.count(), 0u);
    EXPECT_THROW(b.majority(rng), std::logic_error);
}

TEST(BundlerTest, SingleInputIsIdentity)
{
    Rng rng(2);
    Hypervector hv = Hypervector::random(257, rng);
    Bundler b(257);
    b.add(hv);
    EXPECT_EQ(b.majority(rng), hv);
}

TEST(BundlerTest, OddMajorityIsExact)
{
    Rng rng(3);
    const std::size_t dim = 333;
    std::vector<Hypervector> inputs;
    for (int i = 0; i < 5; ++i)
        inputs.push_back(Hypervector::random(dim, rng));
    Bundler b(dim);
    for (const auto &hv : inputs)
        b.add(hv);
    const Hypervector maj = b.majority(rng);
    for (std::size_t i = 0; i < dim; ++i) {
        int ones = 0;
        for (const auto &hv : inputs)
            ones += hv.get(i);
        EXPECT_EQ(maj.get(i), ones > 2) << "component " << i;
    }
}

TEST(BundlerTest, OnesCountMatchesManual)
{
    Rng rng(4);
    const std::size_t dim = 130;
    std::vector<Hypervector> inputs;
    Bundler b(dim);
    for (int i = 0; i < 7; ++i) {
        inputs.push_back(Hypervector::random(dim, rng));
        b.add(inputs.back());
    }
    for (std::size_t i = 0; i < dim; ++i) {
        std::uint32_t ones = 0;
        for (const auto &hv : inputs)
            ones += hv.get(i);
        EXPECT_EQ(b.onesCount(i), ones);
    }
}

TEST(BundlerTest, CountTracksAdds)
{
    Rng rng(5);
    Bundler b(64);
    for (int i = 1; i <= 10; ++i) {
        b.add(Hypervector::random(64, rng));
        EXPECT_EQ(b.count(), static_cast<std::uint64_t>(i));
    }
}

TEST(BundlerTest, ClearResets)
{
    Rng rng(6);
    Bundler b(64);
    b.add(Hypervector::random(64, rng));
    b.clear();
    EXPECT_EQ(b.count(), 0u);
    const Hypervector ones = Hypervector::fromString(
        std::string(64, '1'));
    b.add(ones);
    EXPECT_EQ(b.majority(rng), ones);
}

TEST(BundlerTest, MajorityPreservesSimilarity)
{
    // delta([A+B+C], A) < D/2: the paper's bundling property.
    Rng rng(7);
    const std::size_t dim = 10000;
    Hypervector a = Hypervector::random(dim, rng);
    Hypervector b = Hypervector::random(dim, rng);
    Hypervector c = Hypervector::random(dim, rng);
    Bundler acc(dim);
    acc.add(a);
    acc.add(b);
    acc.add(c);
    const Hypervector maj = acc.majority(rng);
    // Expected distance D/4 for three random inputs.
    EXPECT_NEAR(maj.hamming(a), dim / 4.0, 300.0);
    EXPECT_NEAR(maj.hamming(b), dim / 4.0, 300.0);
    EXPECT_NEAR(maj.hamming(c), dim / 4.0, 300.0);
    EXPECT_LT(maj.hamming(a), dim / 2 - 500);
}

TEST(BundlerTest, TieBreakingIsBalanced)
{
    // Bundle one all-ones and one all-zeros vector: every component
    // ties; the tie-break coin should set roughly half the bits.
    Rng rng(8);
    const std::size_t dim = 10000;
    Bundler b(dim);
    b.add(Hypervector(dim));
    b.add(Hypervector::fromString(std::string(dim, '1')));
    const Hypervector maj = b.majority(rng);
    EXPECT_NEAR(maj.popcount(), dim / 2.0, 300.0);
}

TEST(BundlerTest, MajorityIsOrderInvariant)
{
    Rng rng(9);
    const std::size_t dim = 200;
    std::vector<Hypervector> inputs;
    for (int i = 0; i < 9; ++i)
        inputs.push_back(Hypervector::random(dim, rng));
    Bundler fwd(dim), rev(dim);
    for (const auto &hv : inputs)
        fwd.add(hv);
    for (auto it = inputs.rbegin(); it != inputs.rend(); ++it)
        rev.add(*it);
    Rng tieA(10), tieB(10);
    EXPECT_EQ(fwd.majority(tieA), rev.majority(tieB));
}

TEST(BundlerTest, SurvivesLaneCounterFlush)
{
    // More adds than the 16-bit lane capacity: totals must stay
    // exact across the internal flush boundary.
    const std::size_t dim = 96;
    Bundler b(dim);
    Hypervector ones = Hypervector::fromString(std::string(dim, '1'));
    Hypervector zeros(dim);
    const int n = 70000; // > 65535
    for (int i = 0; i < n; ++i)
        b.add(ones);
    b.add(zeros);
    EXPECT_EQ(b.count(), static_cast<std::uint64_t>(n + 1));
    EXPECT_EQ(b.onesCount(0), static_cast<std::uint32_t>(n));
    EXPECT_EQ(b.onesCount(dim - 1), static_cast<std::uint32_t>(n));
    Rng rng(11);
    EXPECT_EQ(b.majority(rng), ones);
}

TEST(BundlerTest, MixedReadsAndWrites)
{
    // onesCount (which flushes) interleaved with adds stays exact.
    Rng rng(12);
    const std::size_t dim = 64;
    Bundler b(dim);
    std::vector<std::uint32_t> manual(dim, 0);
    for (int round = 0; round < 20; ++round) {
        Hypervector hv = Hypervector::random(dim, rng);
        b.add(hv);
        for (std::size_t i = 0; i < dim; ++i)
            manual[i] += hv.get(i);
        EXPECT_EQ(b.onesCount(round % dim), manual[round % dim]);
    }
}

TEST(BundlerTest, BundleOfManyRandomStaysBalanced)
{
    Rng rng(13);
    const std::size_t dim = 4096;
    Bundler b(dim);
    for (int i = 0; i < 101; ++i)
        b.add(Hypervector::random(dim, rng));
    const Hypervector maj = b.majority(rng);
    EXPECT_NEAR(maj.popcount(), dim / 2.0, 250.0);
}

} // namespace

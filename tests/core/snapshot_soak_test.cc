/**
 * @file
 * Train-while-serve soak: 8 reader threads hammer a SnapshotSource
 * with mixed nearest/top-k queries while a writer publishes a
 * sequence of grown snapshots through a SnapshotBuilder.
 *
 * The assertions are the serving contract itself:
 *  - every query batch observes exactly one coherent snapshot (all
 *    results inside one pin match the expectation table of that
 *    pin's sequence number -- never a mix of generations);
 *  - sequence numbers are monotone per reader (a later acquire never
 *    sees an older snapshot);
 *  - retired snapshots are freed once the last reader drops its pin
 *    (liveSnapshots returns to baseline + 1).
 *
 * Expectations per generation are precomputed single-threaded from
 * identical builder products, so any cross-thread tearing, torn
 * swap, or use-after-retire shows up as a wrong answer here -- and
 * as a data-race report under the check-tsan build, which runs this
 * suite via its tier1 label.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/random.hh"
#include "core/snapshot.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::RankedMatch;
using hdham::Rng;
using hdham::snapshot::MemorySnapshot;
using hdham::snapshot::SnapshotBuilder;
using hdham::snapshot::SnapshotRef;
using hdham::snapshot::SnapshotSource;

constexpr std::size_t kDim = 512;
constexpr std::size_t kBaseClasses = 8;
constexpr std::size_t kGenerations = 4; // >= 2 swaps after the first
constexpr std::size_t kQueries = 8;
constexpr std::size_t kReaders = 8;
constexpr std::size_t kTopK = 3;
constexpr int kReaderIters = 400;

/** Expected answers for one published generation. */
struct Expected
{
    std::vector<std::size_t> nearestId;
    std::vector<std::size_t> nearestDist;
    std::vector<std::vector<RankedMatch>> topK;
};

/**
 * Drive @p builder through generation @p gen (1-based): generation 1
 * is the base model, each later generation adds one class. The same
 * deterministic stream builds the soak's published snapshots and the
 * single-threaded expectation table.
 */
void
growToGeneration(SnapshotBuilder &builder, std::size_t gen)
{
    if (gen == 1) {
        Rng rng(0x736f616bULL);
        for (std::size_t c = 0; c < kBaseClasses; ++c) {
            builder.addClass("base" + std::to_string(c));
            builder.addSample(c, Hypervector::random(kDim, rng));
        }
        return;
    }
    Rng rng(0x736f616bULL + gen);
    const std::size_t id =
        builder.addClass("gen" + std::to_string(gen));
    builder.addSample(id, Hypervector::random(kDim, rng));
    builder.addSample(id, Hypervector::random(kDim, rng));
    builder.addSample(id, Hypervector::random(kDim, rng));
}

std::vector<Hypervector>
soakQueries()
{
    Rng rng(0x71736f616bULL);
    std::vector<Hypervector> queries;
    for (std::size_t q = 0; q < kQueries; ++q)
        queries.push_back(Hypervector::random(kDim, rng));
    return queries;
}

Expected
expectationsFor(const MemorySnapshot &snap,
                const std::vector<Hypervector> &queries)
{
    Expected e;
    for (const Hypervector &query : queries) {
        const auto r = snap.memory().search(query);
        e.nearestId.push_back(r.classId);
        e.nearestDist.push_back(r.bestDistance);
        e.topK.push_back(snap.memory().searchTopK(query, kTopK));
    }
    return e;
}

TEST(SnapshotSoakTest, ReadersObserveCoherentSnapshotsAcrossSwaps)
{
    const std::size_t baseline = SnapshotSource::liveSnapshots();
    const std::vector<Hypervector> queries = soakQueries();

    // Expectation table, generation g at index g-1, computed from a
    // twin builder before any concurrency starts.
    std::vector<Expected> expected;
    {
        SnapshotBuilder twin(kDim);
        for (std::size_t gen = 1; gen <= kGenerations; ++gen) {
            growToGeneration(twin, gen);
            expected.push_back(
                expectationsFor(*twin.build(), queries));
        }
    }

    SnapshotSource source;
    SnapshotBuilder builder(kDim);
    growToGeneration(builder, 1);
    ASSERT_EQ(builder.publish(source), 1u);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> generationsSeen{0};

    auto readerBody = [&](std::size_t readerIdx) {
        std::uint64_t lastSeq = 0;
        std::uint64_t seenMask = 0;
        // Run at least kReaderIters, then keep reading until the
        // final generation is observed (bounded by the failsafe so a
        // broken publish cannot hang the suite).
        for (int iter = 0; iter < 1000000; ++iter) {
            if (iter >= kReaderIters &&
                (lastSeq == kGenerations || stop.load()))
                break;
            const SnapshotRef pin = source.acquire();
            if (!pin) {
                ++failures;
                continue;
            }
            const std::uint64_t seq = pin->sequence();
            if (seq < lastSeq || seq == 0 ||
                seq > kGenerations) {
                ++failures;
                continue;
            }
            lastSeq = seq;
            seenMask |= std::uint64_t(1) << seq;
            const Expected &want = expected[seq - 1];
            // Mixed workload: every reader alternates nearest and
            // top-k, offset by its index so the interleavings vary.
            const std::size_t q =
                (static_cast<std::size_t>(iter) + readerIdx) %
                kQueries;
            if ((iter + readerIdx) % 2 == 0) {
                const auto r = pin->memory().search(queries[q]);
                if (r.classId != want.nearestId[q] ||
                    r.bestDistance != want.nearestDist[q])
                    ++failures;
            } else {
                const auto ranked =
                    pin->memory().searchTopK(queries[q], kTopK);
                if (ranked.size() != want.topK[q].size()) {
                    ++failures;
                } else {
                    for (std::size_t i = 0; i < ranked.size();
                         ++i) {
                        if (ranked[i].classId !=
                                want.topK[q][i].classId ||
                            ranked[i].distance !=
                                want.topK[q][i].distance)
                            ++failures;
                    }
                }
            }
        }
        generationsSeen.fetch_or(seenMask);
    };

    std::vector<std::thread> readers;
    for (std::size_t r = 0; r < kReaders; ++r)
        readers.emplace_back(readerBody, r);

    // Writer: publish the remaining generations while the readers
    // run. A yield between swaps lets readers actually land on the
    // intermediate generations on single-CPU hosts.
    for (std::size_t gen = 2; gen <= kGenerations; ++gen) {
        growToGeneration(builder, gen);
        EXPECT_EQ(builder.publish(source), gen);
        for (int spin = 0; spin < 50; ++spin)
            std::this_thread::yield();
    }

    stop.store(true); // failsafe release if a publish failed above
    for (std::thread &t : readers)
        t.join();

    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(source.swaps(), kGenerations);
    // Every reader finished; only the current head may stay alive.
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);
    // The readers collectively saw the final generation at least
    // (and on most schedules several intermediate ones).
    EXPECT_NE(generationsSeen.load() &
                  (std::uint64_t(1) << kGenerations),
              0u);
}

TEST(SnapshotSoakTest, PinnedReaderSurvivesManySwapsMidBatch)
{
    const std::size_t baseline = SnapshotSource::liveSnapshots();
    const std::vector<Hypervector> queries = soakQueries();

    SnapshotSource source;
    SnapshotBuilder builder(kDim);
    growToGeneration(builder, 1);
    builder.publish(source);

    SnapshotRef pin = source.acquire();
    const Expected want = expectationsFor(*pin, queries);

    // A reader holding its pin across an entire writer burst must
    // keep seeing generation 1 answers, bit for bit.
    std::thread writer([&] {
        for (std::size_t gen = 2; gen <= kGenerations; ++gen) {
            growToGeneration(builder, gen);
            builder.publish(source);
        }
    });
    for (int round = 0; round < 200; ++round) {
        const std::size_t q = round % kQueries;
        const auto r = pin->memory().search(queries[q]);
        EXPECT_EQ(r.classId, want.nearestId[q]);
        EXPECT_EQ(r.bestDistance, want.nearestDist[q]);
    }
    writer.join();

    EXPECT_EQ(pin->sequence(), 1u);
    EXPECT_GT(SnapshotSource::liveSnapshots(), baseline + 1);
    pin.reset();
    EXPECT_EQ(SnapshotSource::liveSnapshots(), baseline + 1);
}

} // namespace

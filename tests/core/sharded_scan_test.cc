/**
 * @file
 * Determinism suite for the sharded scan paths.
 *
 * The sharded contract: nearestSharded()/topKSharded() are
 * bit-identical to the unsharded row-major exhaustive scan -- winner
 * indices, distances and the lowest-index tie rule -- for every
 * layout, shard count and thread count; and because every shard
 * seeds its own pruning bound, the merged ScanStats counters are
 * byte-identical at every thread count (the worker assignment only
 * decides who runs a shard, never what the shard computes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/distance.hh"
#include "core/packed_rows.hh"
#include "core/random.hh"

namespace
{

using hdham::Hypervector;
using hdham::PackedRows;
using hdham::PruneMode;
using hdham::RowLayout;
using hdham::RowMatch;
using hdham::Rng;
using hdham::ScanPolicy;
using hdham::ScanStats;
using hdham::StoreLayout;
namespace distance = hdham::distance;

constexpr std::size_t kDim = 1024;
constexpr std::size_t kRows = 53; // prime: every shard count is ragged
constexpr std::size_t kSlicePrefix = 192;
constexpr std::size_t kCascade = 128;

const std::size_t kShardCounts[] = {1, 2, 3, 7, 16};
const std::size_t kThreadCounts[] = {1, 4, 8};

/** Policies spanning exhaustive, abandon-only and cascade scans. */
std::vector<ScanPolicy>
shardedPolicies()
{
    return {
        ScanPolicy{PruneMode::Off, 0},
        ScanPolicy{PruneMode::On, 0},
        ScanPolicy{PruneMode::Auto, kCascade},
        ScanPolicy{PruneMode::On, kCascade},
    };
}

/**
 * Shared skewed workload (same recipe as the pruned-scan suite:
 * duplicate rows for ties, most queries near a stored prototype) plus
 * an untouched row-major unsharded copy that serves as the oracle.
 */
struct ShardedWorkload
{
    PackedRows rows;   // reshaped by the tests
    PackedRows oracle; // stays row-major, single shard
    std::vector<Hypervector> queries;

    ShardedWorkload() : rows(kDim), oracle(kDim)
    {
        Rng rng(0x5AAD);
        std::vector<Hypervector> stored;
        for (std::size_t r = 0; r < kRows; ++r) {
            if (r >= 2 && r % 5 == 0)
                stored.push_back(stored[r - 2]); // exact duplicate
            else
                stored.push_back(Hypervector::random(kDim, rng));
            rows.append(stored.back());
            oracle.append(stored.back());
        }
        for (std::size_t q = 0; q < 20; ++q) {
            if (q % 4 == 3) {
                queries.push_back(Hypervector::random(kDim, rng));
            } else {
                Hypervector hv = stored[(7 * q) % kRows];
                hv.injectErrors(kDim / 20, rng);
                queries.push_back(std::move(hv));
            }
        }
    }
};

const ShardedWorkload &
workload()
{
    static const ShardedWorkload w;
    return w;
}

/** The layout axis: seed row-major and the sliced head layout. */
std::vector<StoreLayout>
layoutAxis(std::size_t shards)
{
    return {
        StoreLayout{RowLayout::RowMajor, shards, 0},
        StoreLayout{RowLayout::Sliced, shards, kSlicePrefix},
    };
}

TEST(ShardedScanTest, NearestMatchesUnshardedExhaustiveOracle)
{
    const ShardedWorkload &w = workload();
    PackedRows sharded(kDim);
    for (std::size_t r = 0; r < kRows; ++r)
        sharded.append(w.oracle.rowVector(r));
    for (const std::size_t shards : kShardCounts) {
        for (const StoreLayout &spec : layoutAxis(shards)) {
            sharded.setLayout(spec);
            for (const Hypervector &query : w.queries) {
                std::size_t wantDist = 0;
                const std::size_t want = w.oracle.nearest(
                    query, kDim, ScanPolicy{PruneMode::Off, 0},
                    nullptr, nullptr, &wantDist);
                for (const ScanPolicy &policy : shardedPolicies()) {
                    for (const std::size_t threads : kThreadCounts) {
                        std::size_t gotDist = 0;
                        const std::size_t got =
                            sharded.nearestSharded(query, kDim,
                                                   policy, threads,
                                                   nullptr, &gotDist);
                        EXPECT_EQ(got, want)
                            << hdham::rowLayoutName(spec.layout)
                            << " shards " << shards << " threads "
                            << threads << " cascade "
                            << policy.cascadePrefix;
                        EXPECT_EQ(gotDist, wantDist)
                            << hdham::rowLayoutName(spec.layout)
                            << " shards " << shards << " threads "
                            << threads;
                    }
                }
            }
        }
    }
}

TEST(ShardedScanTest, TopKMatchesSortOracle)
{
    const ShardedWorkload &w = workload();
    PackedRows sharded(kDim);
    for (std::size_t r = 0; r < kRows; ++r)
        sharded.append(w.oracle.rowVector(r));
    for (const std::size_t shards : kShardCounts) {
        for (const StoreLayout &spec : layoutAxis(shards)) {
            sharded.setLayout(spec);
            for (const Hypervector &query : w.queries) {
                std::vector<RowMatch> oracle;
                for (std::size_t r = 0; r < kRows; ++r)
                    oracle.push_back(
                        {r, w.oracle.distance(r, query, kDim)});
                std::stable_sort(
                    oracle.begin(), oracle.end(),
                    [](const RowMatch &a, const RowMatch &b) {
                        return a.distance != b.distance
                                   ? a.distance < b.distance
                                   : a.index < b.index;
                    });
                for (const std::size_t k :
                     {std::size_t{0}, std::size_t{1}, std::size_t{5},
                      kRows, kRows + 3}) {
                    const std::size_t kk = std::min(k, kRows);
                    for (const ScanPolicy &policy :
                         shardedPolicies()) {
                        for (const std::size_t threads :
                             kThreadCounts) {
                            std::vector<RowMatch> got;
                            sharded.topKSharded(query, kDim, k,
                                                policy, threads,
                                                nullptr, got);
                            ASSERT_EQ(got.size(), kk)
                                << "k " << k << " shards " << shards;
                            for (std::size_t i = 0; i < kk; ++i) {
                                EXPECT_EQ(got[i].index,
                                          oracle[i].index)
                                    << hdham::rowLayoutName(
                                           spec.layout)
                                    << " shards " << shards
                                    << " threads " << threads
                                    << " k " << k << " rank " << i;
                                EXPECT_EQ(got[i].distance,
                                          oracle[i].distance)
                                    << "k " << k << " rank " << i;
                            }
                        }
                    }
                }
            }
        }
    }
}

TEST(ShardedScanTest, MergedCountersAreThreadCountInvariant)
{
    // Per-shard bounds make every counter a pure function of the
    // (query, shard partition) pair: the sequential per-shard reduce
    // in nearest()/topK() and every nearestSharded()/topKSharded()
    // thread count must produce byte-identical merged ScanStats.
    const ShardedWorkload &w = workload();
    PackedRows sharded(kDim);
    for (std::size_t r = 0; r < kRows; ++r)
        sharded.append(w.oracle.rowVector(r));
    for (const std::size_t shards : kShardCounts) {
        for (const StoreLayout &spec : layoutAxis(shards)) {
            sharded.setLayout(spec);
            for (const ScanPolicy &policy : shardedPolicies()) {
                for (const Hypervector &query : w.queries) {
                    ScanStats sequential;
                    sharded.nearest(query, kDim, policy, &sequential,
                                    nullptr);
                    ScanStats seqTopK;
                    std::vector<RowMatch> out;
                    sharded.topK(query, kDim, 5, policy, &seqTopK,
                                 out);
                    for (const std::size_t threads : kThreadCounts) {
                        ScanStats stats;
                        sharded.nearestSharded(query, kDim, policy,
                                               threads, &stats);
                        EXPECT_EQ(stats.rowsPruned,
                                  sequential.rowsPruned)
                            << hdham::rowLayoutName(spec.layout)
                            << " shards " << shards << " threads "
                            << threads;
                        EXPECT_EQ(stats.wordsSkipped,
                                  sequential.wordsSkipped)
                            << "threads " << threads;
                        EXPECT_EQ(stats.cascadeSurvivors,
                                  sequential.cascadeSurvivors)
                            << "threads " << threads;

                        ScanStats topkStats;
                        sharded.topKSharded(query, kDim, 5, policy,
                                            threads, &topkStats,
                                            out);
                        EXPECT_EQ(topkStats.rowsPruned,
                                  seqTopK.rowsPruned)
                            << "topK threads " << threads;
                        EXPECT_EQ(topkStats.wordsSkipped,
                                  seqTopK.wordsSkipped)
                            << "topK threads " << threads;
                        EXPECT_EQ(topkStats.cascadeSurvivors,
                                  seqTopK.cascadeSurvivors)
                            << "topK threads " << threads;
                    }
                }
            }
        }
    }
}

TEST(ShardedScanTest, PrunedRowCountersAreLayoutInvariant)
{
    // rowsPruned and cascadeSurvivors depend only on distance values
    // and the shard partition, never on the physical layout.
    // (wordsSkipped may differ across layouts: the split kernels
    // place their strip checks per stride.)
    const ShardedWorkload &w = workload();
    PackedRows rowMajor(kDim);
    PackedRows sliced(kDim);
    for (std::size_t r = 0; r < kRows; ++r) {
        rowMajor.append(w.oracle.rowVector(r));
        sliced.append(w.oracle.rowVector(r));
    }
    for (const std::size_t shards : kShardCounts) {
        rowMajor.setLayout(StoreLayout{RowLayout::RowMajor, shards, 0});
        sliced.setLayout(
            StoreLayout{RowLayout::Sliced, shards, kSlicePrefix});
        for (const ScanPolicy &policy : shardedPolicies()) {
            for (const Hypervector &query : w.queries) {
                ScanStats row;
                ScanStats slice;
                rowMajor.nearestSharded(query, kDim, policy, 1, &row);
                sliced.nearestSharded(query, kDim, policy, 1, &slice);
                EXPECT_EQ(slice.rowsPruned, row.rowsPruned)
                    << "shards " << shards << " cascade "
                    << policy.cascadePrefix;
                EXPECT_EQ(slice.cascadeSurvivors,
                          row.cascadeSurvivors)
                    << "shards " << shards;
            }
        }
    }
}

TEST(ShardedScanTest, AllRowsIdenticalTiesResolveToRowZero)
{
    // Ties spanning every shard boundary: the bound-aware reduce
    // must keep the globally lowest index, never a later shard's
    // equal-distance winner.
    Rng rng(33);
    PackedRows rows(kDim);
    const Hypervector proto = Hypervector::random(kDim, rng);
    for (std::size_t r = 0; r < 24; ++r)
        rows.append(proto);
    Hypervector query = proto;
    query.injectErrors(kDim / 10, rng);
    for (const std::size_t shards : kShardCounts) {
        for (const StoreLayout &spec : layoutAxis(shards)) {
            rows.setLayout(spec);
            for (const ScanPolicy &policy : shardedPolicies()) {
                for (const std::size_t threads : kThreadCounts) {
                    std::size_t dist = 0;
                    EXPECT_EQ(rows.nearestSharded(query, kDim,
                                                  policy, threads,
                                                  nullptr, &dist),
                              0u)
                        << hdham::rowLayoutName(spec.layout)
                        << " shards " << shards << " threads "
                        << threads;
                    std::vector<RowMatch> top;
                    rows.topKSharded(query, kDim, 6, policy, threads,
                                     nullptr, top);
                    ASSERT_EQ(top.size(), 6u);
                    for (std::size_t i = 0; i < top.size(); ++i) {
                        EXPECT_EQ(top[i].index, i)
                            << "shards " << shards << " threads "
                            << threads;
                        EXPECT_EQ(top[i].distance, dist);
                    }
                }
            }
        }
    }
}

} // namespace

/**
 * @file
 * Tests for the ranked (top-k) search, decision margins, the
 * evaluation metrics (precision/recall/F1) and the D-HAM cycle
 * model.
 */

#include <gtest/gtest.h>

#include "core/assoc_memory.hh"
#include "core/random.hh"
#include "ham/digital_blocks.hh"
#include "lang/pipeline.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Hypervector;
using hdham::Rng;
using hdham::ham::DhamCycleModel;
using hdham::lang::Evaluation;

TEST(TopKTest, RanksByDistance)
{
    AssociativeMemory am(8);
    am.store(Hypervector::fromString("11111111")); // d=8 from zero
    am.store(Hypervector::fromString("00000011")); // d=2
    am.store(Hypervector::fromString("00000000")); // d=0
    am.store(Hypervector::fromString("00001111")); // d=4
    const auto ranked = am.searchTopK(Hypervector(8), 3);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].classId, 2u);
    EXPECT_EQ(ranked[0].distance, 0u);
    EXPECT_EQ(ranked[1].classId, 1u);
    EXPECT_EQ(ranked[2].classId, 3u);
}

TEST(TopKTest, TiesBreakTowardLowerId)
{
    AssociativeMemory am(8);
    am.store(Hypervector::fromString("00000001"));
    am.store(Hypervector::fromString("00000010"));
    const auto ranked = am.searchTopK(Hypervector(8), 2);
    EXPECT_EQ(ranked[0].classId, 0u);
    EXPECT_EQ(ranked[1].classId, 1u);
}

TEST(TopKTest, KLargerThanSizeReturnsAll)
{
    AssociativeMemory am(16);
    Rng rng(1);
    am.store(Hypervector::random(16, rng));
    am.store(Hypervector::random(16, rng));
    EXPECT_EQ(am.searchTopK(Hypervector(16), 10).size(), 2u);
}

TEST(TopKTest, TopOneMatchesSearch)
{
    AssociativeMemory am(512);
    Rng rng(2);
    for (int c = 0; c < 12; ++c)
        am.store(Hypervector::random(512, rng));
    for (int q = 0; q < 30; ++q) {
        const Hypervector query = Hypervector::random(512, rng);
        const auto ranked = am.searchTopK(query, 1);
        const auto hit = am.search(query);
        EXPECT_EQ(ranked[0].classId, hit.classId);
        EXPECT_EQ(ranked[0].distance, hit.bestDistance);
    }
}

TEST(MarginTest, ComputesRunnerUpGap)
{
    AssociativeMemory am(8);
    am.store(Hypervector::fromString("00000000"));
    am.store(Hypervector::fromString("00011111"));
    am.store(Hypervector::fromString("11111111"));
    const auto result =
        am.searchDetailed(Hypervector::fromString("00000001"));
    EXPECT_EQ(result.classId, 0u);
    EXPECT_EQ(result.bestDistance, 1u);
    EXPECT_EQ(result.margin(), 3u); // runner-up at distance 4
}

TEST(MarginTest, SingleClassHasZeroMargin)
{
    AssociativeMemory am(8);
    am.store(Hypervector::fromString("00000000"));
    EXPECT_EQ(am.searchDetailed(Hypervector(8)).margin(), 0u);
}

TEST(MetricsTest, PerfectClassifier)
{
    Evaluation eval;
    eval.confusion = {{10, 0}, {0, 20}};
    eval.correct = 30;
    eval.total = 30;
    EXPECT_DOUBLE_EQ(eval.recall(0), 1.0);
    EXPECT_DOUBLE_EQ(eval.precision(1), 1.0);
    EXPECT_DOUBLE_EQ(eval.f1(0), 1.0);
    EXPECT_DOUBLE_EQ(eval.macroF1(), 1.0);
}

TEST(MetricsTest, KnownConfusionMatrix)
{
    // truth 0: 8 right, 2 as class 1; truth 1: 5 right, 5 as 0.
    Evaluation eval;
    eval.confusion = {{8, 2}, {5, 5}};
    EXPECT_DOUBLE_EQ(eval.recall(0), 0.8);
    EXPECT_DOUBLE_EQ(eval.recall(1), 0.5);
    EXPECT_NEAR(eval.precision(0), 8.0 / 13.0, 1e-12);
    EXPECT_NEAR(eval.precision(1), 5.0 / 7.0, 1e-12);
    const double f0 = 2 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
    EXPECT_NEAR(eval.f1(0), f0, 1e-12);
    EXPECT_NEAR(eval.macroF1(), (eval.f1(0) + eval.f1(1)) / 2.0,
                1e-12);
}

TEST(MetricsTest, DegenerateCases)
{
    Evaluation empty;
    EXPECT_DOUBLE_EQ(empty.macroF1(), 0.0);
    EXPECT_DOUBLE_EQ(empty.recall(3), 0.0);

    // Class never predicted: precision 0, f1 0.
    Evaluation eval;
    eval.confusion = {{0, 5}, {0, 5}};
    EXPECT_DOUBLE_EQ(eval.precision(0), 0.0);
    EXPECT_DOUBLE_EQ(eval.f1(0), 0.0);
    EXPECT_DOUBLE_EQ(eval.recall(1), 1.0);
}

TEST(CycleModelTest, CountsCountersAndTree)
{
    const auto cycles = DhamCycleModel::searchCycles(10000, 100, 64);
    EXPECT_EQ(cycles.counter, 157u); // ceil(10000/64)
    EXPECT_EQ(cycles.tree, 7u);      // ceil(log2 100)
    EXPECT_EQ(cycles.total(), 164u);
}

TEST(CycleModelTest, SamplingShortensTheCount)
{
    EXPECT_LT(DhamCycleModel::searchCycles(7000, 21).total(),
              DhamCycleModel::searchCycles(10000, 21).total());
}

TEST(CycleModelTest, SerialCounterIsTheSlowMode)
{
    // The paper's "iterates through D output bits": one bit per
    // cycle makes the counter dominate by orders of magnitude.
    const auto serial = DhamCycleModel::searchCycles(10000, 21, 1);
    EXPECT_EQ(serial.counter, 10000u);
    EXPECT_GT(serial.counter, 1000u * serial.tree);
}

TEST(CycleModelTest, ValidatesArguments)
{
    EXPECT_THROW(DhamCycleModel::searchCycles(0, 10),
                 std::invalid_argument);
    EXPECT_THROW(DhamCycleModel::searchCycles(10, 0),
                 std::invalid_argument);
    EXPECT_THROW(DhamCycleModel::searchCycles(10, 10, 0),
                 std::invalid_argument);
}

} // namespace

/**
 * @file
 * Property-based tests of the HD computing algebra (Section II):
 * statistical invariants of binding, bundling and permutation over a
 * sweep of dimensionalities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/ops.hh"
#include "core/random.hh"

namespace
{

using hdham::bind;
using hdham::bundle;
using hdham::distance;
using hdham::Hypervector;
using hdham::normalizedDistance;
using hdham::permute;
using hdham::Rng;

class HdAlgebraTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    std::size_t dim() const { return GetParam(); }
    /** 6-sigma band around D/2 for random-pair distances. */
    double halfBand() const { return 3.0 * std::sqrt(dim()) + 1.0; }
};

TEST_P(HdAlgebraTest, BindingIsDissimilarToOperands)
{
    Rng rng(dim());
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    const Hypervector bound = bind(a, b);
    EXPECT_NEAR(distance(bound, a), dim() / 2.0, 2 * halfBand());
    EXPECT_NEAR(distance(bound, b), dim() / 2.0, 2 * halfBand());
}

TEST_P(HdAlgebraTest, BindingIsCommutativeAndSelfInverse)
{
    Rng rng(dim() + 1);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    EXPECT_EQ(bind(a, b), bind(b, a));
    EXPECT_EQ(bind(bind(a, b), b), a);
}

TEST_P(HdAlgebraTest, BindingPreservesDistance)
{
    // delta(A^X, B^X) == delta(A, B): binding is an isometry.
    Rng rng(dim() + 2);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    const Hypervector x = Hypervector::random(dim(), rng);
    EXPECT_EQ(distance(bind(a, x), bind(b, x)), distance(a, b));
}

TEST_P(HdAlgebraTest, BundlingPreservesSimilarity)
{
    // delta([A+B+C], A) < D/2 (expected D/4).
    Rng rng(dim() + 3);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    const Hypervector c = Hypervector::random(dim(), rng);
    const Hypervector maj = bundle({a, b, c}, rng);
    EXPECT_NEAR(distance(maj, a), dim() / 4.0, 2 * halfBand());
    EXPECT_LT(distance(maj, a), dim() / 2 - halfBand());
}

TEST_P(HdAlgebraTest, BundleIsCloserToMembersThanToOutsiders)
{
    Rng rng(dim() + 4);
    std::vector<Hypervector> members;
    for (int i = 0; i < 5; ++i)
        members.push_back(Hypervector::random(dim(), rng));
    const Hypervector maj = bundle(members, rng);
    const Hypervector outsider = Hypervector::random(dim(), rng);
    for (const auto &m : members)
        EXPECT_LT(distance(maj, m), distance(maj, outsider));
}

TEST_P(HdAlgebraTest, PermutationIsDissimilar)
{
    Rng rng(dim() + 5);
    const Hypervector a = Hypervector::random(dim(), rng);
    EXPECT_NEAR(distance(permute(a), a), dim() / 2.0, 2 * halfBand());
}

TEST_P(HdAlgebraTest, PermutationIsAnIsometry)
{
    Rng rng(dim() + 6);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    EXPECT_EQ(distance(permute(a), permute(b)), distance(a, b));
}

TEST_P(HdAlgebraTest, PermutationDistributesOverBinding)
{
    // rho(A ^ B) == rho(A) ^ rho(B): the identity behind the paper's
    // trigram encoding rewrite.
    Rng rng(dim() + 7);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    EXPECT_EQ(permute(bind(a, b)), bind(permute(a), permute(b)));
}

TEST_P(HdAlgebraTest, NormalizedDistanceInUnitRange)
{
    Rng rng(dim() + 8);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    const double nd = normalizedDistance(a, b);
    EXPECT_GE(nd, 0.0);
    EXPECT_LE(nd, 1.0);
    EXPECT_DOUBLE_EQ(normalizedDistance(a, a), 0.0);
}

TEST_P(HdAlgebraTest, SampledDistanceConcentratesAroundScaledFull)
{
    // The i.i.d.-components property behind every sampling knob.
    Rng rng(dim() + 9);
    const Hypervector a = Hypervector::random(dim(), rng);
    const Hypervector b = Hypervector::random(dim(), rng);
    const std::size_t prefix = dim() / 2;
    const double scaled =
        2.0 * static_cast<double>(a.hammingPrefix(b, prefix));
    EXPECT_NEAR(scaled, static_cast<double>(distance(a, b)),
                8.0 * std::sqrt(static_cast<double>(dim())) + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Dims, HdAlgebraTest,
                         ::testing::Values(256, 512, 1000, 2048, 4096,
                                           10000));

TEST(HdAlgebraEdgeTest, BundleOfEmptySetThrows)
{
    Rng rng(1);
    EXPECT_THROW(bundle({}, rng), std::invalid_argument);
}

TEST(HdAlgebraEdgeTest, BundleOfOneIsIdentity)
{
    Rng rng(2);
    const Hypervector a = Hypervector::random(777, rng);
    EXPECT_EQ(bundle({a}, rng), a);
}

TEST(HdAlgebraEdgeTest, MajorityDominatedByRepeatedMember)
{
    Rng rng(3);
    const Hypervector a = Hypervector::random(512, rng);
    const Hypervector b = Hypervector::random(512, rng);
    EXPECT_EQ(bundle({a, a, a, b}, rng), a);
}

} // namespace

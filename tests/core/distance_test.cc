/**
 * @file
 * Dispatch property tests for the Hamming kernel registry: every
 * *registered* backend -- present and future; nothing here names a
 * kernel except the scalar oracle -- must return the exact same
 * integer count as a naive bit loop, for randomized ragged widths
 * where `bits` is not a multiple of the word or vector size and the
 * final word carries garbage padding beyond `bits`. The bounded
 * (early-abandon) forms must be bound-exact (the true distance d
 * when d < bound, kAbandoned otherwise -- never a partial count),
 * which also makes kAbandoned independent of where a backend places
 * its strip checks.
 *
 * Also pins the dispatch rules: resolution order (env override ->
 * widest-supported probe), the one-time warning for an invalid
 * HDHAM_KERNEL value, name lookups, and rejection of kernels this
 * host cannot execute.
 *
 * NOTE: the dispatch state is process-global, so the env-override
 * test must run before anything calls setKernelByName(); gtest runs
 * tests in declaration order within a suite, and this file keeps the
 * env-sensitive test in its own suite declared first. The binary
 * uses tests/support/kernel_pin_main.cc, so a run pinned (via
 * HDHAM_KERNEL) to a backend this host cannot execute exits 77 --
 * a loud ctest SKIP, never a silent fallback pass.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "core/distance.hh"
#include "core/random.hh"

namespace
{

using hdham::Rng;
namespace distance = hdham::distance;
using distance::KernelEntry;

/** Bit-at-a-time oracle; deliberately shares no code with kernels. */
std::size_t
naiveHamming(const std::vector<std::uint64_t> &a,
             const std::vector<std::uint64_t> &b, std::size_t bits)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        const std::uint64_t x = (a[i / 64] >> (i % 64)) & 1;
        const std::uint64_t y = (b[i / 64] >> (i % 64)) & 1;
        count += x ^ y;
    }
    return count;
}

/**
 * Random word array long enough for @p bits, with every word fully
 * random -- including the bits of the last word beyond @p bits, so a
 * kernel that forgets to mask the tail miscounts.
 */
std::vector<std::uint64_t>
randomWords(std::size_t bits, Rng &rng)
{
    const std::size_t words = (bits + 63) / 64;
    std::vector<std::uint64_t> out(words);
    for (auto &w : out)
        w = rng.next();
    return out;
}

/**
 * Widths straddling the word (64), SSE/NEON (128), AVX2 (256) and
 * AVX-512 (512) boundaries, plus randomized ragged widths drawn per
 * test so new strip sizes cannot overfit a fixed list.
 */
std::vector<std::size_t>
raggedWidths(Rng &rng)
{
    std::vector<std::size_t> widths = {
        1,   3,   63,  64,  65,   127,  128,  129,  191, 192,
        250, 255, 256, 257, 383,  384,  511,  512,  513, 1000,
        2048,
        4099, 10000};
    for (int i = 0; i < 12; ++i)
        widths.push_back(1 + rng.next() % 20000);
    return widths;
}

/** Backends this host can execute, by registry entry. */
std::vector<const KernelEntry *>
usableEntries()
{
    std::vector<const KernelEntry *> out;
    for (const KernelEntry &entry : distance::kernels())
        if (entry.usable())
            out.push_back(&entry);
    return out;
}

// Declared first so it observes the untouched startup dispatch state
// (see file comment). Skips unless the harness set HDHAM_KERNEL.
TEST(DistanceEnvTest, EnvResolutionRespected)
{
    const char *env = std::getenv("HDHAM_KERNEL");
    if (!env)
        GTEST_SKIP() << "HDHAM_KERNEL not set";
    // A valid, available value must win; anything else must resolve
    // to the same choice the pure resolver reports (the widest
    // available backend), never crash or stick on a bogus name.
    const KernelEntry &want =
        distance::resolveKernelChoice(env, nullptr);
    EXPECT_STREQ(distance::activeKernelName(), want.name);
    const KernelEntry *named = distance::findKernel(env);
    if (named && named->usable())
        EXPECT_STREQ(distance::activeKernelName(), env);
}

TEST(DistanceKernelTest, ScalarMatchesNaiveOracle)
{
    Rng rng(11);
    for (const std::size_t bits : raggedWidths(rng)) {
        const auto a = randomWords(bits, rng);
        const auto b = randomWords(bits, rng);
        EXPECT_EQ(distance::scalarHamming(a.data(), b.data(), bits),
                  naiveHamming(a, b, bits))
            << "bits = " << bits;
    }
}

TEST(DistanceKernelTest, EveryRegisteredKernelMatchesScalarOracle)
{
    Rng rng(22);
    for (const KernelEntry &entry : distance::kernels()) {
        if (!entry.usable()) {
            std::printf("note: kernel '%s' not available on this "
                        "host (%s); exact-form check skipped\n",
                        entry.name, entry.requirement);
            continue;
        }
        for (const std::size_t bits : raggedWidths(rng)) {
            for (int rep = 0; rep < 4; ++rep) {
                const auto a = randomWords(bits, rng);
                const auto b = randomWords(bits, rng);
                EXPECT_EQ(
                    entry.fn(a.data(), b.data(), bits),
                    distance::scalarHamming(a.data(), b.data(),
                                            bits))
                    << entry.name << " bits = " << bits << ", rep "
                    << rep;
            }
        }
    }
}

TEST(DistanceKernelTest,
     EveryRegisteredBoundedKernelIsBoundExact)
{
    // The bound-exact contract behind every pruning proof: the
    // bounded form returns the exact distance iff it is strictly
    // below the bound, and the sentinel otherwise -- never a
    // partial count. Randomized bounds straddle the exact distance
    // so both sides of the contract are exercised at every width.
    Rng rng(33);
    for (const KernelEntry &entry : distance::kernels()) {
        if (!entry.usable()) {
            std::printf("note: kernel '%s' not available on this "
                        "host (%s); bounded-form check skipped\n",
                        entry.name, entry.requirement);
            continue;
        }
        for (const std::size_t bits : raggedWidths(rng)) {
            const auto a = randomWords(bits, rng);
            const auto b = randomWords(bits, rng);
            const std::size_t exact =
                distance::scalarHamming(a.data(), b.data(), bits);
            const std::size_t totalWords = (bits + 63) / 64;
            std::vector<std::size_t> bounds = {
                1, exact, exact + 1, bits + 1};
            bounds.push_back(1 + rng.next() % (bits + 1));
            for (const std::size_t bound : bounds) {
                std::size_t wordsRead = 0;
                const std::size_t got = entry.bounded(
                    a.data(), b.data(), bits, bound, &wordsRead);
                if (exact < bound) {
                    EXPECT_EQ(got, exact)
                        << entry.name << " bits " << bits
                        << " bound " << bound;
                    EXPECT_EQ(wordsRead, totalWords)
                        << entry.name << " bits " << bits;
                } else {
                    EXPECT_EQ(got, distance::kAbandoned)
                        << entry.name << " bits " << bits
                        << " bound " << bound;
                }
                EXPECT_LE(wordsRead, totalWords)
                    << entry.name << " bits " << bits;
            }
        }
    }
}

TEST(DistanceKernelTest, AbandonmentIsStripPlacementIndependent)
{
    // kAbandoned-vs-count must agree across every pair of backends
    // for the same inputs and bound: because popcounts only grow,
    // whether d < bound is a fact about the data, not about where a
    // kernel placed its strip checks. (wordsRead may differ; the
    // returned value may not.)
    Rng rng(44);
    const auto entries = usableEntries();
    for (const std::size_t bits : raggedWidths(rng)) {
        const auto a = randomWords(bits, rng);
        const auto b = randomWords(bits, rng);
        const std::size_t exact =
            distance::scalarHamming(a.data(), b.data(), bits);
        for (const std::size_t bound :
             {std::size_t{1}, exact, exact + 1, bits + 1,
              1 + rng.next() % (bits + 1)}) {
            std::size_t wordsRead = 0;
            const std::size_t want = distance::scalarHammingBounded(
                a.data(), b.data(), bits, bound, &wordsRead);
            for (const KernelEntry *entry : entries) {
                const std::size_t got = entry->bounded(
                    a.data(), b.data(), bits, bound, &wordsRead);
                EXPECT_EQ(got, want)
                    << entry->name << " bits " << bits << " bound "
                    << bound;
            }
        }
    }
}

TEST(DistanceKernelTest, IdenticalVectorsAndComplements)
{
    Rng rng(55);
    for (const std::size_t bits : {63u, 256u, 1000u}) {
        const auto a = randomWords(bits, rng);
        auto flipped = a;
        for (auto &w : flipped)
            w = ~w;
        for (const KernelEntry *entry : usableEntries()) {
            EXPECT_EQ(entry->fn(a.data(), a.data(), bits), 0u)
                << entry->name;
            EXPECT_EQ(entry->fn(a.data(), flipped.data(), bits),
                      bits)
                << entry->name;
        }
    }
}

TEST(DistanceDispatchTest, EveryUsableKernelServesHamming)
{
    Rng rng(66);
    const auto a = randomWords(4099, rng);
    const auto b = randomWords(4099, rng);
    const std::size_t want =
        distance::scalarHamming(a.data(), b.data(), 4099);

    for (const KernelEntry *entry : usableEntries()) {
        distance::setKernelByName(entry->name);
        EXPECT_EQ(&distance::activeEntry(), entry);
        EXPECT_STREQ(distance::activeKernelName(), entry->name);
        EXPECT_EQ(distance::hamming(a.data(), b.data(), 4099), want)
            << entry->name;
        std::size_t wordsRead = 0;
        EXPECT_EQ(distance::hammingBounded(a.data(), b.data(), 4099,
                                           4100, &wordsRead),
                  want)
            << entry->name;
    }
    distance::setKernelByName("auto");
    // Auto must land on the widest usable backend (the last
    // registered entry whose probe passes), never on a stub.
    EXPECT_TRUE(distance::activeEntry().usable());
    EXPECT_EQ(&distance::activeEntry(),
              &distance::resolveKernelChoice(nullptr, nullptr));
}

TEST(DistanceDispatchTest, RegistryNamesAreUniqueAndLookUp)
{
    std::set<std::string> seen;
    for (const KernelEntry &entry : distance::kernels()) {
        EXPECT_TRUE(seen.insert(entry.name).second)
            << "duplicate kernel name " << entry.name;
        EXPECT_EQ(distance::findKernel(entry.name), &entry);
        EXPECT_NE(entry.fn, nullptr) << entry.name;
        EXPECT_NE(entry.bounded, nullptr) << entry.name;
        EXPECT_NE(distance::kernelNameList().find(entry.name),
                  std::string::npos)
            << entry.name;
    }
    EXPECT_EQ(distance::findKernel("sse9"), nullptr);
    EXPECT_EQ(distance::findKernel(""), nullptr);
    // "auto" is a dispatch directive, not a registered backend.
    EXPECT_EQ(distance::findKernel("auto"), nullptr);
}

TEST(DistanceDispatchTest, ScalarKernelsAlwaysRegisteredAndUsable)
{
    const distance::KernelEntry *scalar =
        distance::findKernel("scalar");
    ASSERT_NE(scalar, nullptr);
    EXPECT_TRUE(scalar->usable());
    EXPECT_EQ(scalar->fn, &distance::scalarHamming);
    EXPECT_EQ(scalar->bounded, &distance::scalarHammingBounded);
    const distance::KernelEntry *unrolled =
        distance::findKernel("unrolled");
    ASSERT_NE(unrolled, nullptr);
    EXPECT_TRUE(unrolled->usable());
}

TEST(DistanceDispatchTest, CompiledAndAvailableListsAreConsistent)
{
    // The available list is a subset of the compiled list, and both
    // contain every backend the probe passes. These lists are the
    // bench baseline's host fingerprint, so they must be stable,
    // comma-joined and in registry order.
    const std::string compiled = distance::compiledKernelList();
    const std::string available = distance::availableKernelList();
    EXPECT_NE(compiled.find("scalar"), std::string::npos);
    EXPECT_NE(available.find("scalar"), std::string::npos);
    for (const KernelEntry &entry : distance::kernels()) {
        const bool inCompiled =
            compiled.find(entry.name) != std::string::npos;
        const bool inAvailable =
            available.find(entry.name) != std::string::npos;
        EXPECT_EQ(inCompiled, entry.compiled) << entry.name;
        EXPECT_EQ(inAvailable, entry.usable()) << entry.name;
        if (inAvailable)
            EXPECT_TRUE(inCompiled) << entry.name;
    }
}

TEST(DistanceDispatchTest, UnusableKernelsRejected)
{
    bool sawUnusable = false;
    for (const KernelEntry &entry : distance::kernels()) {
        if (entry.usable())
            continue;
        sawUnusable = true;
        EXPECT_THROW(distance::setKernelByName(entry.name),
                     std::invalid_argument)
            << entry.name;
    }
    if (!sawUnusable)
        GTEST_SKIP() << "every registered kernel is usable here";
}

TEST(DistanceDispatchTest, SetKernelByNameRejectsUnknown)
{
    try {
        distance::setKernelByName("vliw9000");
        FAIL() << "unknown kernel accepted";
    } catch (const std::invalid_argument &e) {
        // The diagnostic must name the valid kernels so the caller
        // can fix the flag without reading the source.
        EXPECT_NE(std::string(e.what()).find("scalar"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("auto"),
                  std::string::npos);
    }
}

TEST(DistanceResolutionTest, EnvChoicesResolveWithWarnings)
{
    std::string warning;

    // Unset / empty / auto: the widest usable backend, no warning.
    const KernelEntry &widest =
        distance::resolveKernelChoice(nullptr, &warning);
    EXPECT_TRUE(widest.usable());
    EXPECT_TRUE(warning.empty());
    EXPECT_EQ(&distance::resolveKernelChoice("", &warning), &widest);
    EXPECT_TRUE(warning.empty());
    EXPECT_EQ(&distance::resolveKernelChoice("auto", &warning),
              &widest);
    EXPECT_TRUE(warning.empty());
    // No registered usable backend is wider than the auto choice.
    bool past = false;
    for (const KernelEntry &entry : distance::kernels()) {
        if (past)
            EXPECT_FALSE(entry.usable()) << entry.name;
        if (&entry == &widest)
            past = true;
    }

    // A valid, usable name wins exactly, silently.
    for (const KernelEntry &entry : distance::kernels()) {
        if (!entry.usable())
            continue;
        EXPECT_EQ(
            &distance::resolveKernelChoice(entry.name, &warning),
            &entry);
        EXPECT_TRUE(warning.empty()) << entry.name;
    }

    // An unknown name falls back to the widest choice WITH a
    // warning that names the valid kernels and the fallback -- the
    // silent-fallback bug this test pins closed.
    EXPECT_EQ(&distance::resolveKernelChoice("sse9", &warning),
              &widest);
    ASSERT_FALSE(warning.empty());
    EXPECT_NE(warning.find("sse9"), std::string::npos);
    EXPECT_NE(warning.find("scalar"), std::string::npos);
    EXPECT_NE(warning.find("auto"), std::string::npos);
    EXPECT_NE(warning.find(widest.name), std::string::npos);

    // A known backend this host cannot run also warns, naming its
    // host requirement instead of the full list.
    for (const KernelEntry &entry : distance::kernels()) {
        if (entry.usable())
            continue;
        EXPECT_EQ(
            &distance::resolveKernelChoice(entry.name, &warning),
            &widest);
        ASSERT_FALSE(warning.empty()) << entry.name;
        EXPECT_NE(warning.find(entry.name), std::string::npos);
        EXPECT_NE(warning.find(entry.requirement),
                  std::string::npos);
    }
}

} // namespace

/**
 * @file
 * The Hamming kernel contract: every kernel (scalar, unrolled, AVX2)
 * returns the exact same integer count as a naive bit loop, for
 * ragged widths where `bits` is not a multiple of 64 or 256 and the
 * final word carries garbage padding beyond `bits`. Also pins the
 * dispatch rules: env override, cpuid fallback, name round-trips,
 * and rejection of unsupported kernels.
 *
 * NOTE: the dispatch state is process-global, so the env-override
 * test must run before anything calls setKernel(); gtest runs tests
 * in declaration order within a suite, and this file keeps the
 * env-sensitive test in its own suite declared first.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/distance.hh"
#include "core/random.hh"

namespace
{

using hdham::Rng;
namespace distance = hdham::distance;

/** Bit-at-a-time oracle; deliberately shares no code with kernels. */
std::size_t
naiveHamming(const std::vector<std::uint64_t> &a,
             const std::vector<std::uint64_t> &b, std::size_t bits)
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < bits; ++i) {
        const std::uint64_t x = (a[i / 64] >> (i % 64)) & 1;
        const std::uint64_t y = (b[i / 64] >> (i % 64)) & 1;
        count += x ^ y;
    }
    return count;
}

/**
 * Random word array long enough for @p bits, with every word fully
 * random -- including the bits of the last word beyond @p bits, so a
 * kernel that forgets to mask the tail miscounts.
 */
std::vector<std::uint64_t>
randomWords(std::size_t bits, Rng &rng)
{
    const std::size_t words = (bits + 63) / 64;
    std::vector<std::uint64_t> out(words);
    for (auto &w : out)
        w = rng.next();
    return out;
}

/** Widths straddling the 64-bit word and 256-bit vector boundaries. */
const std::size_t kRaggedWidths[] = {
    1,   3,   63,  64,  65,  127, 128,  129,  191,  192,
    250, 255, 256, 257, 511, 512, 1000, 2048, 4099, 10000};

// Declared first so it observes the untouched startup dispatch state
// (see file comment). Skips unless the harness set HDHAM_KERNEL.
TEST(DistanceEnvTest, EnvOverrideRespected)
{
    const char *env = std::getenv("HDHAM_KERNEL");
    if (!env)
        GTEST_SKIP() << "HDHAM_KERNEL not set";
    EXPECT_STREQ(distance::activeKernelName(), env);
}

TEST(DistanceKernelTest, ScalarMatchesNaiveOracle)
{
    Rng rng(11);
    for (const std::size_t bits : kRaggedWidths) {
        const auto a = randomWords(bits, rng);
        const auto b = randomWords(bits, rng);
        EXPECT_EQ(distance::scalarHamming(a.data(), b.data(), bits),
                  naiveHamming(a, b, bits))
            << "bits = " << bits;
    }
}

TEST(DistanceKernelTest, UnrolledMatchesScalar)
{
    Rng rng(22);
    for (const std::size_t bits : kRaggedWidths) {
        for (int rep = 0; rep < 8; ++rep) {
            const auto a = randomWords(bits, rng);
            const auto b = randomWords(bits, rng);
            EXPECT_EQ(
                distance::unrolledHamming(a.data(), b.data(), bits),
                distance::scalarHamming(a.data(), b.data(), bits))
                << "bits = " << bits << ", rep " << rep;
        }
    }
}

TEST(DistanceKernelTest, Avx2MatchesScalar)
{
    if (!distance::kernelSupported(distance::Kernel::Avx2))
        GTEST_SKIP() << "host lacks AVX2";
    Rng rng(33);
    for (const std::size_t bits : kRaggedWidths) {
        for (int rep = 0; rep < 8; ++rep) {
            const auto a = randomWords(bits, rng);
            const auto b = randomWords(bits, rng);
            EXPECT_EQ(
                distance::avx2Hamming(a.data(), b.data(), bits),
                distance::scalarHamming(a.data(), b.data(), bits))
                << "bits = " << bits << ", rep " << rep;
        }
    }
}

TEST(DistanceKernelTest, IdenticalVectorsAndComplements)
{
    Rng rng(44);
    for (const std::size_t bits : {63u, 256u, 1000u}) {
        const auto a = randomWords(bits, rng);
        auto flipped = a;
        for (auto &w : flipped)
            w = ~w;
        for (const distance::HammingFn fn :
             {&distance::scalarHamming, &distance::unrolledHamming,
              &distance::avx2Hamming}) {
            EXPECT_EQ(fn(a.data(), a.data(), bits), 0u);
            EXPECT_EQ(fn(a.data(), flipped.data(), bits), bits);
        }
    }
}

TEST(DistanceDispatchTest, EverySupportedKernelServesHamming)
{
    Rng rng(55);
    const auto a = randomWords(4099, rng);
    const auto b = randomWords(4099, rng);
    const std::size_t want =
        distance::scalarHamming(a.data(), b.data(), 4099);

    for (const distance::Kernel kernel :
         {distance::Kernel::Scalar, distance::Kernel::Unrolled,
          distance::Kernel::Avx2}) {
        if (!distance::kernelSupported(kernel))
            continue;
        distance::setKernel(kernel);
        EXPECT_EQ(distance::activeKernel(), kernel);
        EXPECT_EQ(distance::hamming(a.data(), b.data(), 4099), want)
            << distance::kernelName(kernel);
    }
    distance::setKernel(distance::Kernel::Auto);
    EXPECT_NE(distance::activeKernel(), distance::Kernel::Auto);
}

TEST(DistanceDispatchTest, NamesRoundTrip)
{
    for (const distance::Kernel kernel :
         {distance::Kernel::Auto, distance::Kernel::Scalar,
          distance::Kernel::Unrolled, distance::Kernel::Avx2}) {
        distance::Kernel parsed = distance::Kernel::Auto;
        ASSERT_TRUE(distance::parseKernel(
            distance::kernelName(kernel), &parsed));
        EXPECT_EQ(parsed, kernel);
    }
    distance::Kernel out = distance::Kernel::Scalar;
    EXPECT_FALSE(distance::parseKernel("sse9", &out));
    EXPECT_FALSE(distance::parseKernel("", &out));
    EXPECT_EQ(out, distance::Kernel::Scalar); // untouched on failure
}

TEST(DistanceDispatchTest, ScalarKernelsAlwaysSupported)
{
    EXPECT_TRUE(distance::kernelSupported(distance::Kernel::Auto));
    EXPECT_TRUE(distance::kernelSupported(distance::Kernel::Scalar));
    EXPECT_TRUE(
        distance::kernelSupported(distance::Kernel::Unrolled));
}

TEST(DistanceDispatchTest, UnsupportedKernelRejected)
{
    if (distance::kernelSupported(distance::Kernel::Avx2))
        GTEST_SKIP() << "host has AVX2; nothing is unsupported";
    EXPECT_THROW(distance::setKernel(distance::Kernel::Avx2),
                 std::invalid_argument);
    EXPECT_THROW(distance::setKernelByName("avx2"),
                 std::invalid_argument);
}

TEST(DistanceDispatchTest, SetKernelByNameRejectsUnknown)
{
    EXPECT_THROW(distance::setKernelByName("neon"),
                 std::invalid_argument);
}

} // namespace

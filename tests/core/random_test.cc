/**
 * @file
 * Unit tests for the deterministic PRNG stack.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/random.hh"

namespace
{

using hdham::Rng;
using hdham::SplitMix64;

TEST(SplitMix64Test, DeterministicForSameSeed)
{
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge)
{
    SplitMix64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsProduceDistinctStreams)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += a.next() == b.next();
    EXPECT_LE(same, 1);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextBelowOneIsAlwaysZero)
{
    Rng rng(4);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextBelowApproximatelyUniform)
{
    Rng rng(6);
    const int buckets = 8, n = 80000;
    int count[8] = {};
    for (int i = 0; i < n; ++i)
        ++count[rng.nextBelow(buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(count[b], n / buckets, 4 * std::sqrt(n / buckets));
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, NextDoubleMeanIsHalf)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoolRespectsProbability)
{
    Rng rng(10);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(11);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, BinomialEdgeCases)
{
    Rng rng(12);
    EXPECT_EQ(rng.nextBinomial(0, 0.5), 0u);
    EXPECT_EQ(rng.nextBinomial(100, 0.0), 0u);
    EXPECT_EQ(rng.nextBinomial(100, 1.0), 100u);
    EXPECT_EQ(rng.nextBinomial(100, -0.5), 0u);
    EXPECT_EQ(rng.nextBinomial(100, 1.5), 100u);
}

TEST(RngTest, BinomialStaysInRange)
{
    Rng rng(13);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LE(rng.nextBinomial(17, 0.4), 17u);
}

class BinomialMomentsTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, double>>
{
};

TEST_P(BinomialMomentsTest, MeanAndVarianceMatch)
{
    const auto [n, p] = GetParam();
    Rng rng(100 + n);
    const int trials = 40000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < trials; ++i) {
        const double k = static_cast<double>(rng.nextBinomial(n, p));
        sum += k;
        sq += k * k;
    }
    const double mean = sum / trials;
    const double var = sq / trials - mean * mean;
    const double expectMean = n * p;
    const double expectVar = n * p * (1 - p);
    EXPECT_NEAR(mean, expectMean,
                0.05 * expectMean + 4 * std::sqrt(expectVar / trials) +
                    0.02);
    EXPECT_NEAR(var, expectVar, 0.10 * expectVar + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinomialMomentsTest,
    ::testing::Values(std::pair<std::uint64_t, double>{1, 0.5},
                      std::pair<std::uint64_t, double>{10, 0.1},
                      std::pair<std::uint64_t, double>{10, 0.9},
                      std::pair<std::uint64_t, double>{100, 0.02},
                      std::pair<std::uint64_t, double>{100, 0.5},
                      std::pair<std::uint64_t, double>{2500, 0.004},
                      std::pair<std::uint64_t, double>{2500, 0.3},
                      std::pair<std::uint64_t, double>{2500, 0.97}));

TEST(RngTest, ForkedStreamsAreDecorrelated)
{
    Rng parent(14);
    Rng childA = parent.fork();
    Rng childB = parent.fork();
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += childA.next() == childB.next();
    EXPECT_LE(same, 1);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator)
{
    static_assert(Rng::min() == 0);
    static_assert(Rng::max() == ~0ULL);
    Rng rng(15);
    EXPECT_NE(rng(), rng());
}

} // namespace

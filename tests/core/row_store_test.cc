/**
 * @file
 * Bit-exactness suite for the sharded, layout-abstracted RowStore.
 *
 * reshape() only moves words; it must never change them. These tests
 * drive a store through layout sequences (row-major <-> sliced,
 * varying shard counts and slice widths, degenerate slices, appends
 * after a reshape) and assert that every row reads back bit for bit,
 * that the shard views always partition the row range contiguously
 * in ascending order, and that locate() agrees with the views.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/hypervector.hh"
#include "core/random.hh"
#include "core/row_store.hh"

namespace
{

using hdham::Hypervector;
using hdham::RowLayout;
using hdham::RowStore;
using hdham::Rng;
using hdham::ShardView;
using hdham::StoreLayout;

/** Random reference rows, each wordsPerRow words (tail included). */
std::vector<std::vector<std::uint64_t>>
makeRows(std::size_t dim, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<std::uint64_t>> rows;
    rows.reserve(count);
    for (std::size_t r = 0; r < count; ++r) {
        const Hypervector hv = Hypervector::random(dim, rng);
        rows.emplace_back(hv.data(), hv.data() + hv.words());
    }
    return rows;
}

/** Every stored row must read back bit for bit. */
void
expectRowsExact(const RowStore &store,
                const std::vector<std::vector<std::uint64_t>> &rows)
{
    ASSERT_EQ(store.rows(), rows.size());
    std::vector<std::uint64_t> buf(store.wordsPerRow());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        store.copyRow(r, buf.data());
        EXPECT_EQ(buf, rows[r]) << "row " << r;
    }
}

/**
 * Shard views must partition [0, rows()) into contiguous ascending
 * non-empty ranges (only a fully empty store keeps one empty shard),
 * with a word-aligned slice seam consistent with sliceWords().
 */
void
expectViewsPartitionRows(const RowStore &store)
{
    std::size_t next = 0;
    for (std::size_t s = 0; s < store.shardCount(); ++s) {
        const ShardView v = store.view(s);
        EXPECT_EQ(v.firstRow, next) << "shard " << s;
        if (store.rows() > 0) {
            EXPECT_GT(v.rows, 0u) << "shard " << s;
        }
        EXPECT_EQ(v.sliceBits % Hypervector::bitsPerWord, 0u);
        EXPECT_EQ(v.sliceBits / Hypervector::bitsPerWord,
                  store.sliceWords());
        next += v.rows;
    }
    EXPECT_EQ(next, store.rows());
}

/** locate() must invert the views' (firstRow, rows) partition. */
void
expectLocateMatchesViews(const RowStore &store)
{
    for (std::size_t r = 0; r < store.rows(); ++r) {
        std::size_t shard = 0;
        std::size_t local = 0;
        store.locate(r, &shard, &local);
        ASSERT_LT(shard, store.shardCount());
        const ShardView v = store.view(shard);
        EXPECT_LT(local, v.rows) << "row " << r;
        EXPECT_EQ(v.firstRow + local, r);
    }
}

TEST(RowStoreTest, LayoutNamesRoundTrip)
{
    for (const RowLayout layout :
         {RowLayout::RowMajor, RowLayout::Sliced}) {
        RowLayout parsed = RowLayout::RowMajor;
        EXPECT_TRUE(
            hdham::parseRowLayout(hdham::rowLayoutName(layout),
                                  &parsed));
        EXPECT_EQ(parsed, layout);
    }
    RowLayout out = RowLayout::Sliced;
    EXPECT_FALSE(hdham::parseRowLayout("column", &out));
    EXPECT_EQ(out, RowLayout::Sliced); // rejected parses leave out alone
}

TEST(RowStoreTest, ReshapeSequenceIsBitExact)
{
    // Word-aligned and ragged dimensions through a layout gauntlet:
    // each step must keep every row, the view partition and locate()
    // exact. Slice widths past the row (dim + 5) must degenerate to
    // whole-row head records, never an empty tail stride.
    for (const std::size_t dim : {512u, 1027u}) {
        const auto rows = makeRows(dim, 23, 0xA11C + dim);
        RowStore store(dim);
        for (const auto &row : rows)
            store.append(row.data());
        const StoreLayout gauntlet[] = {
            StoreLayout{RowLayout::Sliced, 3, 128},
            StoreLayout{RowLayout::Sliced, 7, 65},
            StoreLayout{RowLayout::RowMajor, 4, 0},
            StoreLayout{RowLayout::Sliced, 2, dim + 5},
            StoreLayout{RowLayout::Sliced, 16, 64},
            StoreLayout{RowLayout::RowMajor, 1, 0},
        };
        for (const StoreLayout &spec : gauntlet) {
            store.reshape(spec);
            EXPECT_GE(store.shardCount(), 1u);
            EXPECT_LE(store.shardCount(), store.rows());
            if (spec.layout == RowLayout::RowMajor ||
                spec.slicePrefix >= dim) {
                EXPECT_EQ(store.sliceWords(), 0u);
            } else {
                EXPECT_GT(store.sliceWords(), 0u);
                EXPECT_LT(store.sliceWords(), store.wordsPerRow());
            }
            expectRowsExact(store, rows);
            expectViewsPartitionRows(store);
            expectLocateMatchesViews(store);
        }
    }
}

TEST(RowStoreTest, AppendAfterReshapeExtendsLastShard)
{
    // Appends always land in the last shard, so earlier shards' row
    // ranges never move -- the property that keeps global row
    // indices stable across training that continues after a reshape.
    const std::size_t dim = 256;
    auto rows = makeRows(dim, 10, 0xADD5);
    RowStore store(dim);
    for (const auto &row : rows)
        store.append(row.data());
    store.reshape(StoreLayout{RowLayout::Sliced, 4, 128});
    ASSERT_EQ(store.shardCount(), 4u);
    std::vector<std::size_t> firstRows;
    for (std::size_t s = 0; s < store.shardCount(); ++s)
        firstRows.push_back(store.view(s).firstRow);

    const auto extra = makeRows(dim, 5, 0xADD6);
    for (const auto &row : extra) {
        const std::size_t index = store.append(row.data());
        EXPECT_EQ(index, rows.size());
        rows.push_back(row);
    }
    EXPECT_EQ(store.shardCount(), 4u);
    for (std::size_t s = 0; s < store.shardCount(); ++s)
        EXPECT_EQ(store.view(s).firstRow, firstRows[s]);
    EXPECT_EQ(store.view(3).rows, 10u - firstRows[3] + 5u);
    expectRowsExact(store, rows);
    expectViewsPartitionRows(store);
    expectLocateMatchesViews(store);
}

TEST(RowStoreTest, ReserveKeepsContentsExact)
{
    // reserve() in both layouts, including on an empty store, must
    // never disturb stored words or the append index sequence.
    const std::size_t dim = 1027;
    RowStore store(dim);
    store.reserve(64);
    auto rows = makeRows(dim, 8, 0x5E5E);
    for (const auto &row : rows)
        store.append(row.data());
    store.reshape(StoreLayout{RowLayout::Sliced, 2, 192});
    store.reserve(32);
    const auto extra = makeRows(dim, 32, 0x5E5F);
    for (const auto &row : extra) {
        store.append(row.data());
        rows.push_back(row);
    }
    expectRowsExact(store, rows);
    expectLocateMatchesViews(store);
}

TEST(RowStoreTest, SlicedWithoutPrefixThrows)
{
    RowStore store(512);
    const auto rows = makeRows(512, 4, 0xBAD5);
    for (const auto &row : rows)
        store.append(row.data());
    EXPECT_THROW(store.reshape(StoreLayout{RowLayout::Sliced, 2, 0}),
                 std::invalid_argument);
    // The failed reshape must not have disturbed the store.
    expectRowsExact(store, rows);
}

TEST(RowStoreTest, ShardCountClampsToRows)
{
    const std::size_t dim = 128;
    const auto rows = makeRows(dim, 3, 0xC1A8);
    RowStore store(dim);
    for (const auto &row : rows)
        store.append(row.data());
    store.reshape(StoreLayout{RowLayout::RowMajor, 16, 0});
    EXPECT_EQ(store.shardCount(), 3u); // never an empty shard
    expectRowsExact(store, rows);
    expectViewsPartitionRows(store);

    // shards == 0 means "one per hardware thread" (clamped to rows).
    store.reshape(StoreLayout{RowLayout::Sliced, 0, 64});
    EXPECT_GE(store.shardCount(), 1u);
    EXPECT_LE(store.shardCount(), 3u);
    expectRowsExact(store, rows);
}

TEST(RowStoreTest, ReshapeEmptyStoreThenAppend)
{
    // Laying out the store before any training data arrives must
    // leave a usable (single-shard) store that accepts appends.
    RowStore store(512);
    store.reshape(StoreLayout{RowLayout::Sliced, 8, 128});
    EXPECT_EQ(store.rows(), 0u);
    ASSERT_GE(store.shardCount(), 1u);
    const auto rows = makeRows(512, 6, 0xE417);
    for (const auto &row : rows)
        store.append(row.data());
    expectRowsExact(store, rows);
    expectLocateMatchesViews(store);
}

} // namespace

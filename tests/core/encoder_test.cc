/**
 * @file
 * Unit tests for the n-gram text encoder.
 */

#include <gtest/gtest.h>

#include "core/bundler.hh"
#include "core/encoder.hh"
#include "core/item_memory.hh"
#include "core/ops.hh"
#include "core/random.hh"

namespace
{

using hdham::Bundler;
using hdham::Encoder;
using hdham::Hypervector;
using hdham::ItemMemory;
using hdham::Rng;
using hdham::TextAlphabet;

class EncoderTest : public ::testing::Test
{
  protected:
    ItemMemory items{TextAlphabet::size, 2048, 99};
    Encoder encoder{items, 3};
};

TEST_F(EncoderTest, TrigramMatchesPaperFormula)
{
    // rho(rho(A) ^ B) ^ C == rho^2(A) ^ rho(B) ^ C (Section II-A.1)
    const Hypervector &A = items[0];
    const Hypervector &B = items[1];
    const Hypervector &C = items[2];
    const Hypervector viaNesting =
        hdham::permute(hdham::permute(A) ^ B) ^ C;
    const Hypervector viaFlat =
        A.rotated(2) ^ B.rotated(1) ^ C;
    EXPECT_EQ(viaNesting, viaFlat);
    EXPECT_EQ(encoder.encodeNgram({0, 1, 2}), viaFlat);
}

TEST_F(EncoderTest, DistinguishesSequenceOrder)
{
    // a-b-c must be uncorrelated with a-c-b.
    const Hypervector abc = encoder.encodeNgram({0, 1, 2});
    const Hypervector acb = encoder.encodeNgram({0, 2, 1});
    EXPECT_NEAR(abc.hamming(acb), 1024.0, 150.0);
}

TEST_F(EncoderTest, NgramIsDissimilarToItsLetters)
{
    const Hypervector abc = encoder.encodeNgram({0, 1, 2});
    for (std::size_t s : {0u, 1u, 2u})
        EXPECT_NEAR(abc.hamming(items[s]), 1024.0, 150.0);
}

TEST_F(EncoderTest, EncodeIntoCountsNgrams)
{
    Bundler bundler(2048);
    EXPECT_EQ(encoder.encodeInto("abcde", bundler), 3u);
    EXPECT_EQ(encoder.encodeInto("abc", bundler), 1u);
    EXPECT_EQ(encoder.encodeInto("ab", bundler), 0u);
    EXPECT_EQ(encoder.encodeInto("", bundler), 0u);
}

TEST_F(EncoderTest, EncodeIntoMatchesManualBundling)
{
    const std::string text = "the cat";
    Bundler viaEncoder(2048);
    encoder.encodeInto(text, viaEncoder);

    Bundler manual(2048);
    for (std::size_t i = 0; i + 3 <= text.size(); ++i) {
        manual.add(encoder.encodeNgram(
            {TextAlphabet::symbolOf(text[i]),
             TextAlphabet::symbolOf(text[i + 1]),
             TextAlphabet::symbolOf(text[i + 2])}));
    }
    Rng a(1), b(1);
    EXPECT_EQ(viaEncoder.majority(a), manual.majority(b));
}

TEST_F(EncoderTest, EncodeRejectsShortText)
{
    Rng rng(2);
    EXPECT_THROW(encoder.encode("ab", rng), std::invalid_argument);
}

TEST_F(EncoderTest, EncodeIsDeterministicGivenSeed)
{
    Rng a(3), b(3);
    EXPECT_EQ(encoder.encode("hello world", a),
              encoder.encode("hello world", b));
}

TEST_F(EncoderTest, SimilarTextsAreCloserThanDissimilar)
{
    Rng rng(4);
    const std::string base =
        "the quick brown fox jumps over the lazy dog";
    const std::string similar =
        "the quick brown fox jumps over the lazy cat";
    const std::string different =
        "zyx wvu tsr qpo nml kji hgf edc ba zz yy xx";
    const Hypervector hvBase = encoder.encode(base, rng);
    const Hypervector hvSim = encoder.encode(similar, rng);
    const Hypervector hvDiff = encoder.encode(different, rng);
    EXPECT_LT(hvBase.hamming(hvSim), hvBase.hamming(hvDiff));
}

TEST_F(EncoderTest, CaseAndPunctuationInsensitive)
{
    Rng a(5), b(5);
    EXPECT_EQ(encoder.encode("Hello World", a),
              encoder.encode("hello world", b));
}

TEST(EncoderConfigTest, RejectsZeroN)
{
    ItemMemory items(27, 256, 1);
    EXPECT_THROW(Encoder(items, 0), std::invalid_argument);
}

class EncoderNgramSizeTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(EncoderNgramSizeTest, NgramCountAndDeterminism)
{
    const std::size_t n = GetParam();
    ItemMemory items(TextAlphabet::size, 1024, 7);
    Encoder encoder(items, n);
    EXPECT_EQ(encoder.ngramSize(), n);
    Bundler bundler(1024);
    const std::string text = "abcdefghij";
    EXPECT_EQ(encoder.encodeInto(text, bundler),
              text.size() - n + 1);
    Rng a(6), b(6);
    EXPECT_EQ(encoder.encode(text, a), encoder.encode(text, b));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EncoderNgramSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EncoderNgramSizeTest, UnigramEncoderBundlesLetters)
{
    ItemMemory items(TextAlphabet::size, 1024, 8);
    Encoder encoder(items, 1);
    EXPECT_EQ(encoder.encodeNgram({4}), items[4]);
}

} // namespace

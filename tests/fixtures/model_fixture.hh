/**
 * @file
 * Deterministic model fixtures shared by the committed golden files
 * in tests/data/, the generator tool (tools/make_model_fixture.cc)
 * and the golden tests.
 *
 * The fixtures pin the hdham.model.v1 byte format: the golden test
 * rebuilds each fixture model from this recipe, re-serializes it,
 * and requires byte equality with the committed file. Any change
 * that alters the emitted bytes is a format break and must bump
 * modelfile::formatVersion (and add new fixtures) instead of
 * silently rewriting the old ones.
 *
 * Everything here derives from fixed seeds through hdham::Rng, which
 * is a portable fixed-width generator, so the recipe reproduces the
 * same bytes on every platform.
 */

#ifndef HDHAM_TESTS_FIXTURES_MODEL_FIXTURE_HH
#define HDHAM_TESTS_FIXTURES_MODEL_FIXTURE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/assoc_memory.hh"
#include "core/item_memory.hh"
#include "core/model_file.hh"
#include "core/random.hh"

namespace hdham::testfix
{

/** One committed fixture: file name plus the recipe behind it. */
struct FixtureSpec
{
    /** File name inside tests/data/. */
    const char *file;
    std::size_t dim;
    std::size_t classes;
    StoreLayout layout;
    /** Embed a 27-symbol item memory (the text alphabet). */
    bool withItems;
};

/** The committed fixture set: one per on-disk layout. */
inline std::vector<FixtureSpec>
fixtureSpecs()
{
    // dim 250 keeps a ragged tail word (250 = 3x64 + 58 bits) so the
    // fixtures cover the clean-tail invariant; 12 classes over 3
    // shards split evenly.
    StoreLayout rowMajor;
    StoreLayout sliced;
    sliced.layout = RowLayout::Sliced;
    sliced.shards = 3;
    sliced.slicePrefix = 128;
    return {
        {"model_rowmajor_d250_c12.hdc", 250, 12, rowMajor, true},
        {"model_sliced_d250_c12_s3.hdc", 250, 12, sliced, true},
    };
}

/** Deterministic class labels: varied lengths, one empty. */
inline std::string
fixtureLabel(std::size_t id)
{
    if (id == 3)
        return ""; // empty labels are legal and must round-trip
    std::string label = "class-" + std::to_string(id);
    if (id % 4 == 1)
        label += "-with-a-longer-suffix";
    return label;
}

/** The fixture's class store, before any re-layout. */
inline AssociativeMemory
buildFixtureMemory(const FixtureSpec &spec)
{
    Rng rng(0xF1C570BEULL + spec.dim * 1315423911ULL);
    AssociativeMemory am(spec.dim);
    am.reserve(spec.classes);
    for (std::size_t id = 0; id < spec.classes; ++id)
        am.store(Hypervector::random(spec.dim, rng),
                 fixtureLabel(id));
    am.setStoreLayout(spec.layout);
    return am;
}

/** The fixture's embedded item memory (when spec.withItems). */
inline ItemMemory
buildFixtureItems(const FixtureSpec &spec)
{
    return ItemMemory(27, spec.dim, 0x5EED5EEDULL);
}

/** Serialize the fixture exactly as the generator tool does. */
inline void
writeFixture(std::ostream &out, const FixtureSpec &spec)
{
    const AssociativeMemory am = buildFixtureMemory(spec);
    modelfile::SaveOptions opts;
    ItemMemory items = buildFixtureItems(spec);
    if (spec.withItems)
        opts.items = &items;
    modelfile::ModelWriter writer(out);
    writer.write(am, opts);
}

} // namespace hdham::testfix

#endif // HDHAM_TESTS_FIXTURES_MODEL_FIXTURE_HH

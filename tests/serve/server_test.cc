/**
 * @file
 * Functional suite for the resident server and hdham.serve.v1.
 *
 * Runs a Server in-process on a unix-domain (and once a loopback
 * TCP) socket, drives it with serve::Client, and checks every
 * request type against answers computed locally from the same model
 * file: search/top-k results are bit-identical to the direct engine,
 * classify matches a local encode with the CLI's tie-break seed,
 * update->swap publishes a grown snapshot that subsequent queries
 * observe, and error paths come back as error responses, not closed
 * connections.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/encoder.hh"
#include "core/item_memory.hh"
#include "core/model_file.hh"
#include "core/random.hh"
#include "lang/pipeline.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace
{

using hdham::AssociativeMemory;
using hdham::Encoder;
using hdham::Hypervector;
using hdham::ItemMemory;
using hdham::Rng;
using hdham::TextAlphabet;
using hdham::serve::Client;
using hdham::serve::PingReply;
using hdham::serve::QueryReply;
using hdham::serve::Server;
using hdham::serve::ServerConfig;
using hdham::serve::SwapReply;
using hdham::serve::TopKReply;
using hdham::serve::UpdateReply;

constexpr std::size_t kDim = 512;
constexpr std::size_t kClasses = 12;
constexpr std::uint64_t kItemSeed = 0x6974656dULL;

AssociativeMemory
fixtureMemory()
{
    Rng rng(0x73727631ULL);
    AssociativeMemory am(kDim);
    for (std::size_t i = 0; i < kClasses; ++i)
        am.store(Hypervector::random(kDim, rng),
                 "label" + std::to_string(i));
    return am;
}

/** Write the fixture model (with an item memory) to a temp file. */
std::string
writeFixtureModel(const std::string &name)
{
    const std::string path = ::testing::TempDir() + name;
    const AssociativeMemory am = fixtureMemory();
    const ItemMemory items(TextAlphabet::size, kDim, kItemSeed);
    hdham::modelfile::SaveOptions opts;
    opts.items = &items;
    hdham::modelfile::save(path, am, opts);
    return path;
}

std::vector<Hypervector>
fixtureQueries(std::size_t count)
{
    Rng rng(0x71737276ULL);
    std::vector<Hypervector> queries;
    for (std::size_t q = 0; q < count; ++q)
        queries.push_back(Hypervector::random(kDim, rng));
    return queries;
}

/** An in-process server on a fresh unix socket, torn down on exit. */
struct ServerFixture
{
    explicit ServerFixture(ServerConfig cfg = {},
                           const std::string &tag = "s")
        : modelPath(writeFixtureModel("server_test_" + tag +
                                      ".hdc"))
    {
        // Keep the path short: sockaddr_un caps sun_path around 108
        // characters and TempDir can be long in some environments.
        socketPath = "/tmp/hdham_" + tag + "_" +
                     std::to_string(::getpid()) + ".sock";
        cfg.unixPath = socketPath;
        server.emplace(std::move(cfg));
        server->loadModel(modelPath);
        server->start();
    }

    ~ServerFixture()
    {
        server->stop();
        server.reset();
        std::remove(modelPath.c_str());
        std::remove(socketPath.c_str());
    }

    Client connect() { return Client::connectUnix(socketPath); }

    std::string modelPath;
    std::string socketPath;
    std::optional<Server> server;
};

TEST(ServerTest, PingReportsProtocolAndModelShape)
{
    ServerFixture fx({}, "ping");
    Client client = fx.connect();
    const PingReply reply = client.ping();
    EXPECT_EQ(reply.protocol, hdham::serve::protocolVersion);
    EXPECT_EQ(reply.sequence, 1u);
    EXPECT_EQ(reply.dim, kDim);
    EXPECT_EQ(reply.classes, kClasses);
}

TEST(ServerTest, SearchMatchesDirectEngineBitForBit)
{
    ServerFixture fx({}, "search");
    Client client = fx.connect();
    const AssociativeMemory local = fixtureMemory();
    const std::vector<Hypervector> queries = fixtureQueries(9);

    const QueryReply reply = client.search(queries);
    EXPECT_EQ(reply.sequence, 1u);
    ASSERT_EQ(reply.results.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto want = local.search(queries[i]);
        EXPECT_EQ(reply.results[i].classId, want.classId);
        EXPECT_EQ(reply.results[i].distance, want.bestDistance);
        EXPECT_EQ(reply.results[i].label,
                  local.labelOf(want.classId));
    }
}

TEST(ServerTest, TopKMatchesDirectEngine)
{
    ServerFixture fx({}, "topk");
    Client client = fx.connect();
    const AssociativeMemory local = fixtureMemory();
    const std::vector<Hypervector> queries = fixtureQueries(5);

    const TopKReply reply = client.topK(4, queries);
    EXPECT_EQ(reply.sequence, 1u);
    ASSERT_EQ(reply.results.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto want = local.searchTopK(queries[i], 4);
        ASSERT_EQ(reply.results[i].size(), want.size());
        for (std::size_t j = 0; j < want.size(); ++j) {
            EXPECT_EQ(reply.results[i][j].classId,
                      want[j].classId);
            EXPECT_EQ(reply.results[i][j].distance,
                      want[j].distance);
        }
    }
}

TEST(ServerTest, ClassifyMatchesLocalEncodeWithCliSeed)
{
    ServerFixture fx({}, "classify");
    Client client = fx.connect();
    const std::vector<std::string> texts = {
        "the quick brown fox jumps over the lazy dog",
        "pack my box with five dozen liquor jugs",
    };

    const QueryReply reply = client.classify(texts);
    ASSERT_EQ(reply.results.size(), texts.size());

    // Replicate the server's (and `hdham classify`'s) encode: the
    // model-embedded item memory, trigrams, and the CLI tie-break
    // seed -- served classification is CLI classification.
    const AssociativeMemory local = fixtureMemory();
    const ItemMemory items(TextAlphabet::size, kDim, kItemSeed);
    const hdham::lang::PipelineConfig defaults;
    const Encoder encoder(items, defaults.ngram);
    Rng rng(defaults.seed ^ 0x636c6966ULL);
    for (std::size_t i = 0; i < texts.size(); ++i) {
        const auto want =
            local.search(encoder.encode(texts[i], rng));
        EXPECT_EQ(reply.results[i].classId, want.classId);
        EXPECT_EQ(reply.results[i].distance, want.bestDistance);
    }
}

TEST(ServerTest, UpdateThenSwapPublishesGrownSnapshot)
{
    ServerFixture fx({}, "update");
    Client client = fx.connect();

    const UpdateReply staged = client.update(
        hdham::serve::kLabeled,
        {{"newlang", "aaaa bbbb cccc dddd eeee ffff gggg"},
         {"newlang", "aaab bbbc cccd ddde eeef fffg gggh"}});
    EXPECT_EQ(staged.applied, 2u);
    EXPECT_EQ(staged.pendingClasses, kClasses + 1);

    // Not visible until the swap.
    EXPECT_EQ(client.ping().classes, kClasses);

    const SwapReply swapped = client.swap();
    EXPECT_EQ(swapped.sequence, 2u);
    EXPECT_GE(swapped.buildUs, 0.0);
    EXPECT_GE(swapped.swapUs, 0.0);

    const PingReply after = client.ping();
    EXPECT_EQ(after.sequence, 2u);
    EXPECT_EQ(after.classes, kClasses + 1);

    // The new class is servable: its own training text classifies
    // into it.
    const QueryReply reply = client.classify(
        {"aaaa bbbb cccc dddd eeee ffff gggg"});
    ASSERT_EQ(reply.results.size(), 1u);
    EXPECT_EQ(reply.results[0].label, "newlang");
    EXPECT_EQ(reply.sequence, 2u);
}

TEST(ServerTest, AssimilateMergesIntoNearestClass)
{
    ServerFixture fx({}, "assim");
    Client client = fx.connect();
    // An impossible-to-meet threshold forces a new class...
    const UpdateReply created = client.update(
        hdham::serve::kAssimilate,
        {{"novel", "zzzz yyyy xxxx wwww vvvv uuuu tttt"}}, 0);
    EXPECT_EQ(created.pendingClasses, kClasses + 1);
    // ...and a full-width threshold merges the next sample into an
    // existing class instead of creating another.
    const UpdateReply merged = client.update(
        hdham::serve::kAssimilate,
        {{"ignored", "zzzz yyyy xxxx wwww vvvv uuuu tttt"}},
        static_cast<std::uint32_t>(kDim));
    EXPECT_EQ(merged.pendingClasses, kClasses + 1);
}

TEST(ServerTest, ErrorsComeBackAsResponsesNotDisconnects)
{
    ServerFixture fx({}, "errors");
    Client client = fx.connect();

    // Wrong query width: an error response naming both widths.
    Rng rng(5);
    try {
        client.search({Hypervector::random(kDim / 2, rng)});
        FAIL() << "short query must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("words"),
                  std::string::npos);
    }

    // Text shorter than the n-gram size.
    EXPECT_THROW(client.classify({"ab"}), std::runtime_error);

    // The connection survives both errors.
    EXPECT_EQ(client.ping().classes, kClasses);
}

TEST(ServerTest, StatsReportsServingGauges)
{
    ServerFixture fx({}, "stats");
    Client client = fx.connect();
    client.search(fixtureQueries(3));
    const std::string json = client.stats();
    EXPECT_NE(json.find("hdham.metrics.v1"), std::string::npos);
    EXPECT_NE(json.find("snapshot.sequence"), std::string::npos);
    EXPECT_NE(json.find("snapshot.swaps"), std::string::npos);
    EXPECT_NE(json.find("serve.queries"), std::string::npos);
    EXPECT_NE(json.find("model.resident_bytes"),
              std::string::npos);
    EXPECT_NE(json.find("hdham.model.v1"), std::string::npos);
}

TEST(ServerTest, TraceGatedByConfig)
{
    {
        ServerFixture fx({}, "notrace");
        Client client = fx.connect();
        EXPECT_THROW(client.traceJson(), std::runtime_error);
    }
    {
        ServerConfig cfg;
        cfg.trace = true;
        ServerFixture fx(cfg, "trace");
        Client client = fx.connect();
        client.search(fixtureQueries(2));
        const std::string json = client.traceJson();
        EXPECT_NE(json.find("traceEvents"), std::string::npos);
    }
}

TEST(ServerTest, ShutdownRequestStopsTheServer)
{
    ServerFixture fx({}, "shutdown");
    Client client = fx.connect();
    client.shutdownServer();
    fx.server->wait(); // returns because the request set stopping
    EXPECT_THROW(fx.connect(), std::runtime_error);
}

TEST(ServerTest, TcpLoopbackServesTheSameProtocol)
{
    const std::string model = writeFixtureModel("server_tcp.hdc");
    ServerConfig cfg; // no unixPath: loopback TCP on a free port
    Server server(std::move(cfg));
    server.loadModel(model);
    server.start();
    ASSERT_NE(server.port(), 0);

    Client client = Client::connectTcp(server.port());
    EXPECT_EQ(client.ping().classes, kClasses);
    const AssociativeMemory local = fixtureMemory();
    const std::vector<Hypervector> queries = fixtureQueries(4);
    const QueryReply reply = client.search(queries);
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_EQ(reply.results[i].classId,
                  local.search(queries[i]).classId);

    server.stop();
    std::remove(model.c_str());
}

TEST(ServerTest, ConcurrentClientsDuringSwapsSeeCoherentAnswers)
{
    ServerFixture fx({}, "soak");
    const AssociativeMemory local = fixtureMemory();
    const std::vector<Hypervector> queries = fixtureQueries(6);
    // Generation 1 expectations; later generations only add classes,
    // so generation-1 winners stay valid unless the new class wins.
    // To keep the check exact we assert on the response's sequence
    // number instead: every response must be internally coherent and
    // sequence-stamped, and generation-1 responses must match the
    // local engine bit for bit.
    std::vector<std::thread> clients;
    std::atomic<std::uint64_t> failures{0};
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&] {
            Client client = fx.connect();
            for (int round = 0; round < 50; ++round) {
                const QueryReply reply = client.search(queries);
                if (reply.results.size() != queries.size())
                    ++failures;
                if (reply.sequence == 1) {
                    for (std::size_t i = 0; i < queries.size();
                         ++i) {
                        const auto want = local.search(queries[i]);
                        if (reply.results[i].classId !=
                                want.classId ||
                            reply.results[i].distance !=
                                want.bestDistance)
                            ++failures;
                    }
                }
            }
        });
    }
    Client updater = fx.connect();
    for (int swapRound = 0; swapRound < 3; ++swapRound) {
        updater.update(hdham::serve::kLabeled,
                       {{"extra" + std::to_string(swapRound),
                         "mmmm nnnn oooo pppp qqqq rrrr ssss"}});
        updater.swap();
    }
    for (std::thread &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(updater.ping().sequence, 4u);
}

} // namespace

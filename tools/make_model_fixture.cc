/**
 * @file
 * Regenerate the committed hdham.model.v1 golden fixtures in
 * tests/data/ from the deterministic recipes in
 * tests/fixtures/model_fixture.hh.
 *
 *   make_model_fixture OUTPUT_DIR
 *
 * Run only when *adding* fixtures for a new format version: the
 * committed files pin the v1 byte layout, and the golden test fails
 * -- by design -- if the writer's output drifts from them.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "fixtures/model_fixture.hh"

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: make_model_fixture OUTPUT_DIR\n");
        return 2;
    }
    const std::string dir = argv[1];
    for (const auto &spec : hdham::testfix::fixtureSpecs()) {
        const std::string path = dir + "/" + spec.file;
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        hdham::testfix::writeFixture(out, spec);
        out.flush();
        if (!out) {
            std::fprintf(stderr, "write failed: %s\n", path.c_str());
            return 1;
        }
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}

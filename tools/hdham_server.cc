/**
 * @file
 * Standalone resident query server: `hdham_server --model PATH
 * (--socket PATH | --port N) ...`. Thin argv adapter over
 * serve::runServeCommand -- identical flags and behavior to
 * `hdham serve`.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "serve/commands.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        return hdham::serve::runServeCommand(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "hdham_server: %s\n", e.what());
        return 1;
    }
}

/**
 * @file
 * hdham command-line tool.
 *
 * Subcommands:
 *   train    --out PATH [--dim N] [--train-chars N] [--sentences N]
 *            [--threads N] [--stats-json PATH] [--trace PATH]
 *            train the 21-language classifier on the synthetic
 *            corpus and persist the learned hypervectors
 *   classify --model PATH [--design dham|rham|aham] [--threads N]
 *            [--batch N] [--prune auto|on|off]
 *            [--cascade-prefix BITS] [--layout row|sliced]
 *            [--shards N] [--stats-json PATH]
 *            [--trace PATH] TEXT...
 *            classify text samples with the chosen HAM design,
 *            batching queries through searchBatch(); --prune /
 *            --cascade-prefix select the bound-pruned scan (exact;
 *            reported in the metrics "info" map next to "kernel");
 *            --layout / --shards re-lay the class store (bit-sliced
 *            cascade heads, per-shard scans) -- also exact
 *
 * --stats-json dumps a query-path observability snapshot (the
 * hdham.metrics.v1 schema of core/metrics.hh): per-design counters
 * (queries, rows scanned, bits sampled, blocks sensed, ...) and the
 * batch latency histogram with p50/p95/p99.
 *
 * --trace records every span on the query path (core/trace.hh) and
 * writes a Chrome trace-event file (hdham.trace.v1) that loads in
 * Perfetto / chrome://tracing, plus a per-span summary on stdout.
 *   info     --model PATH
 *            describe a saved model
 *   cost     [--dim N] [--classes N]
 *            print the design-space cost table
 *
 * The encoder configuration (item-memory seed, trigram size) is the
 * library default, so any model trained by this tool can be reloaded
 * and queried by it.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/distance.hh"
#include "core/metrics.hh"
#include "core/serialize.hh"
#include "core/trace.hh"
#include "ham/a_ham.hh"
#include "ham/d_ham.hh"
#include "ham/design_space.hh"
#include "ham/r_ham.hh"
#include "lang/corpus.hh"
#include "lang/pipeline.hh"

namespace
{

using namespace hdham;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  hdham train --out PATH [--dim N] [--train-chars N] "
        "[--sentences N] [--threads N] [--kernel K] "
        "[--stats-json PATH] [--trace PATH]\n"
        "  hdham classify --model PATH [--design dham|rham|aham] "
        "[--threads N] [--batch N] [--kernel K] "
        "[--prune auto|on|off] [--cascade-prefix BITS] "
        "[--layout row|sliced] [--shards N] "
        "[--stats-json PATH] [--trace PATH] TEXT...\n"
        "  hdham info --model PATH\n"
        "  hdham cost [--dim N] [--classes N]\n"
        "\n"
        "  --prune M         bound-pruned scan mode for prunable "
        "designs (dham): auto (default; prune when the\n"
        "                    bound is tight), on, off -- results are "
        "bit-identical in every mode\n"
        "  --cascade-prefix BITS\n"
        "                    score rows on the first BITS components "
        "first, then refine survivors (0 = off);\n"
        "                    exact for any value\n"
        "  --layout L        physical class-store layout for "
        "prunable designs (dham): row (default) or sliced\n"
        "                    (cascade-prefix head words stored "
        "contiguously; requires --cascade-prefix);\n"
        "                    results are bit-identical either way\n"
        "  --shards N        partition the class store into N "
        "contiguous row shards scanned independently\n"
        "                    (0 = one per hardware thread; default "
        "1); results are bit-identical for any N\n"
        "  --threads N       scan workers for batched search (0 = "
        "all hardware threads; default 1)\n"
        "  --batch N         queries per searchBatch() call (0 = "
        "all at once; default 0)\n"
        "  --kernel K        Hamming distance kernel: scalar, "
        "unrolled, avx2 or auto (default: HDHAM_KERNEL env,\n"
        "                    else runtime cpuid dispatch; results "
        "are bit-identical for every kernel)\n"
        "  --stats-json PATH write a query-path metrics snapshot "
        "(hdham.metrics.v1 JSON)\n"
        "  --trace PATH      write a Chrome trace-event file "
        "(hdham.trace.v1 JSON, loads in Perfetto) and print a\n"
        "                    per-span timing summary\n");
    return 2;
}

/** Pull `--flag value` or `--flag=value` out of the argument list. */
std::string
option(std::vector<std::string> &args, const std::string &flag,
       const std::string &fallback)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == flag && i + 1 < args.size()) {
            const std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            return value;
        }
        if (args[i].size() > flag.size() + 1 &&
            args[i].compare(0, flag.size(), flag) == 0 &&
            args[i][flag.size()] == '=') {
            const std::string value = args[i].substr(flag.size() + 1);
            args.erase(args.begin() + static_cast<long>(i));
            return value;
        }
    }
    return fallback;
}

std::size_t
numericOption(std::vector<std::string> &args, const std::string &flag,
              std::size_t fallback)
{
    const std::string value =
        option(args, flag, std::to_string(fallback));
    return std::strtoull(value.c_str(), nullptr, 10);
}

/**
 * Apply `--kernel NAME` if present. Returns false (after printing a
 * diagnostic) when the name is unknown or the kernel is not supported
 * on this CPU; without the flag the env/cpuid default stands.
 */
bool
kernelOption(std::vector<std::string> &args, const char *command)
{
    const std::string name = option(args, "--kernel", "");
    if (name.empty())
        return true;
    distance::Kernel kernel;
    if (!distance::parseKernel(name, &kernel)) {
        std::fprintf(stderr,
                     "%s: unknown kernel '%s' (expected scalar, "
                     "unrolled, avx2 or auto)\n",
                     command, name.c_str());
        return false;
    }
    if (!distance::kernelSupported(kernel)) {
        std::fprintf(stderr,
                     "%s: kernel '%s' is not supported on this "
                     "CPU\n",
                     command, name.c_str());
        return false;
    }
    distance::setKernel(kernel);
    return true;
}

/**
 * Write one JSON artifact through @p body and report the path on
 * stdout. Shared by the --stats-json and --trace writers so the
 * open/flush/error handling lives in one place.
 */
void
writeArtifact(const char *what, const std::string &path,
              const std::function<void(std::ostream &)> &body)
{
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error(std::string(what) +
                                 ": cannot open " + path);
    }
    body(out);
    out.flush();
    if (!out) {
        throw std::runtime_error(std::string(what) +
                                 ": write failed: " + path);
    }
    std::printf("%s written to %s\n", what, path.c_str());
}

/**
 * Common tail of every --stats-json run: the model/run gauges every
 * subcommand reports, then the write. Callers attach their per-design
 * counters (and any extra gauges) before handing the registry over.
 */
void
writeStatsJson(metrics::Registry &registry, const std::string &path,
               std::size_t dim, std::size_t classes,
               std::size_t threads)
{
    registry.setGauge("model.dim", static_cast<double>(dim));
    registry.setGauge("model.classes", static_cast<double>(classes));
    registry.setGauge("run.threads", static_cast<double>(threads));
    registry.setInfo("kernel", distance::activeKernelName());
    writeArtifact("metrics", path, [&](std::ostream &out) {
        registry.writeJson(out);
    });
}

/**
 * Deactivate the tracer, write the Chrome trace file, and print the
 * per-span summary. Call after the traced workload has finished (all
 * batch scans joined).
 */
void
writeTrace(trace::Tracer &tracer, const std::string &path)
{
    trace::setActive(nullptr);
    writeArtifact("trace", path, [&](std::ostream &out) {
        tracer.writeChromeJson(out);
    });
    tracer.writeSummary(std::cout);
}

int
cmdTrain(std::vector<std::string> args)
{
    const std::string out = option(args, "--out", "");
    if (out.empty()) {
        std::fprintf(stderr, "train: --out is required\n");
        return 2;
    }
    lang::CorpusConfig corpusCfg;
    corpusCfg.trainChars = numericOption(args, "--train-chars",
                                         corpusCfg.trainChars);
    corpusCfg.testSentences = numericOption(args, "--sentences",
                                            corpusCfg.testSentences);
    lang::PipelineConfig pipeCfg;
    pipeCfg.dim = numericOption(args, "--dim", pipeCfg.dim);
    const std::size_t threads = numericOption(args, "--threads", 1);
    const std::string statsPath = option(args, "--stats-json", "");
    const std::string tracePath = option(args, "--trace", "");
    if (!kernelOption(args, "train"))
        return 2;

    std::printf("training %zu languages at D = %zu...\n",
                corpusCfg.numLanguages, pipeCfg.dim);
    const lang::SyntheticCorpus corpus(corpusCfg);

    // Activate tracing before the pipeline constructor so the
    // lang.train / lang.encode spans are captured too.
    trace::Tracer tracer;
    if (!tracePath.empty())
        trace::setActive(&tracer);

    lang::RecognitionPipeline pipeline(corpus, pipeCfg);

    metrics::QueryMetrics memoryMetrics;
    metrics::ClassificationMetrics evalMetrics;
    if (!statsPath.empty())
        pipeline.attachMetrics(&evalMetrics, &memoryMetrics);

    const auto eval = pipeline.evaluateExact(threads);
    std::printf("held-out accuracy: %.1f%% (%zu/%zu)\n",
                100.0 * eval.accuracy(), eval.correct, eval.total);

    serialize::saveMemory(out, pipeline.memory());
    std::printf("model written to %s\n", out.c_str());

    if (!tracePath.empty())
        writeTrace(tracer, tracePath);

    if (!statsPath.empty()) {
        metrics::Registry registry;
        registry.attachQuery("am", memoryMetrics);
        registry.attachClassification("lang", evalMetrics);
        writeStatsJson(registry, statsPath, pipeCfg.dim,
                       pipeline.memory().size(), threads);
    }
    return 0;
}

std::unique_ptr<ham::Ham>
makeDesign(const std::string &name, std::size_t dim)
{
    if (name == "dham") {
        ham::DHamConfig cfg;
        cfg.dim = dim;
        return std::make_unique<ham::DHam>(cfg);
    }
    if (name == "rham") {
        ham::RHamConfig cfg;
        cfg.dim = dim;
        return std::make_unique<ham::RHam>(cfg);
    }
    if (name == "aham") {
        ham::AHamConfig cfg;
        cfg.dim = dim;
        return std::make_unique<ham::AHam>(cfg);
    }
    return nullptr;
}

int
cmdClassify(std::vector<std::string> args)
{
    const std::string path = option(args, "--model", "");
    const std::string design = option(args, "--design", "dham");
    const std::size_t threads = numericOption(args, "--threads", 1);
    const std::size_t batch = numericOption(args, "--batch", 0);
    const std::string statsPath = option(args, "--stats-json", "");
    const std::string tracePath = option(args, "--trace", "");
    const std::string pruneName = option(args, "--prune", "auto");
    const std::size_t cascadePrefix =
        numericOption(args, "--cascade-prefix", 0);
    if (!kernelOption(args, "classify"))
        return 2;
    ScanPolicy scanPolicy;
    if (!parsePruneMode(pruneName, &scanPolicy.prune)) {
        std::fprintf(stderr,
                     "classify: unknown prune mode '%s' (expected "
                     "auto, on or off)\n",
                     pruneName.c_str());
        return 2;
    }
    scanPolicy.cascadePrefix = cascadePrefix;
    const std::string layoutName = option(args, "--layout", "row");
    const std::size_t shards = numericOption(args, "--shards", 1);
    StoreLayout storeLayout;
    if (!parseRowLayout(layoutName, &storeLayout.layout)) {
        std::fprintf(stderr,
                     "classify: unknown layout '%s' (expected row "
                     "or sliced)\n",
                     layoutName.c_str());
        return 2;
    }
    if (storeLayout.layout == RowLayout::Sliced &&
        cascadePrefix == 0) {
        std::fprintf(stderr,
                     "classify: --layout sliced requires "
                     "--cascade-prefix (the slice holds the "
                     "cascade's head words)\n");
        return 2;
    }
    storeLayout.shards = shards;
    storeLayout.slicePrefix = cascadePrefix;
    if (path.empty() || args.empty()) {
        std::fprintf(stderr, "classify: need --model and at least "
                             "one TEXT argument\n");
        return 2;
    }
    const AssociativeMemory memory = serialize::loadMemory(path);
    std::unique_ptr<ham::Ham> hardware =
        makeDesign(design, memory.dim());
    if (!hardware) {
        std::fprintf(stderr, "classify: unknown design '%s'\n",
                     design.c_str());
        return 2;
    }
    hardware->loadFrom(memory);
    hardware->setScanPolicy(scanPolicy);
    if (storeLayout.layout != RowLayout::RowMajor || shards != 1)
        hardware->setStoreLayout(storeLayout);

    metrics::QueryMetrics designMetrics;
    if (!statsPath.empty())
        hardware->attachMetrics(&designMetrics);

    trace::Tracer tracer;
    if (!tracePath.empty())
        trace::setActive(&tracer);

    // Rebuild the encoder with the library-default configuration
    // the model was trained with.
    const lang::PipelineConfig defaults;
    const ItemMemory items(TextAlphabet::size, memory.dim(),
                           defaults.seed);
    const Encoder encoder(items, defaults.ngram);
    Rng rng(defaults.seed ^ 0x636c6966ULL);

    // Encode every usable sample up front, then classify through the
    // batch path in --batch sized chunks (0 = one shot).
    std::vector<Hypervector> queries;
    std::vector<std::size_t> queryOf(args.size(),
                                     args.size()); // skip marker
    {
        TRACE_SPAN("classify.encode");
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (args[i].size() < defaults.ngram)
                continue;
            queryOf[i] = queries.size();
            queries.push_back(encoder.encode(args[i], rng));
        }
    }

    std::vector<ham::HamResult> hits;
    hits.reserve(queries.size());
    const std::size_t chunk = batch == 0 ? queries.size() : batch;
    for (std::size_t start = 0; start < queries.size();
         start += chunk) {
        const std::size_t end =
            std::min(start + chunk, queries.size());
        const std::vector<Hypervector> slice(
            queries.begin() + static_cast<long>(start),
            queries.begin() + static_cast<long>(end));
        for (const auto &hit : hardware->searchBatch(slice, threads))
            hits.push_back(hit);
    }

    {
        TRACE_SPAN("classify.decide");
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (queryOf[i] == args.size()) {
                std::printf("%-14s <- \"%s\" (too short)\n", "?",
                            args[i].c_str());
                continue;
            }
            const auto &hit = hits[queryOf[i]];
            std::printf("%-14s <- \"%.60s\"\n",
                        memory.labelOf(hit.classId).c_str(),
                        args[i].c_str());
        }
    }

    if (!tracePath.empty())
        writeTrace(tracer, tracePath);

    if (!statsPath.empty()) {
        metrics::Registry registry;
        registry.attachQuery(design, designMetrics);
        registry.setGauge("run.batch", static_cast<double>(chunk));
        registry.setInfo("prune", pruneModeName(scanPolicy.prune));
        registry.setInfo("cascade_prefix",
                         std::to_string(scanPolicy.cascadePrefix));
        registry.setInfo("layout",
                         rowLayoutName(storeLayout.layout));
        registry.setGauge("run.shards", static_cast<double>(shards));
        writeStatsJson(registry, statsPath, memory.dim(),
                       memory.size(), threads);
    }
    return 0;
}

int
cmdInfo(std::vector<std::string> args)
{
    const std::string path = option(args, "--model", "");
    if (path.empty()) {
        std::fprintf(stderr, "info: --model is required\n");
        return 2;
    }
    const AssociativeMemory memory = serialize::loadMemory(path);
    std::printf("dimensionality : %zu\n", memory.dim());
    std::printf("classes        : %zu\n", memory.size());
    if (memory.size() >= 2) {
        std::printf("min class margin: %zu bits\n",
                    memory.minPairwiseDistance());
    }
    for (std::size_t id = 0; id < memory.size(); ++id) {
        std::printf("  [%2zu] %-14s (%zu ones)\n", id,
                    memory.labelOf(id).c_str(),
                    memory.vectorOf(id).popcount());
    }
    return 0;
}

int
cmdCost(std::vector<std::string> args)
{
    const std::size_t dim = numericOption(args, "--dim", 10000);
    const std::size_t classes =
        numericOption(args, "--classes", 21);
    std::printf("design space at D = %zu, C = %zu:\n", dim, classes);
    std::printf("%8s %10s | %-26s %10s %9s %10s\n", "design",
                "target", "knobs", "energy/pJ", "delay/ns", "EDP");
    for (const ham::DesignPoint &point :
         ham::fullDesignSpace(dim, classes)) {
        std::printf("%8s %10s | %-26s %10.2f %9.2f %10.3g\n",
                    ham::designName(point.design),
                    ham::targetName(point.target),
                    point.description.c_str(), point.cost.energyPj,
                    point.cost.delayNs, point.cost.edp());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "train")
            return cmdTrain(std::move(args));
        if (command == "classify")
            return cmdClassify(std::move(args));
        if (command == "info")
            return cmdInfo(std::move(args));
        if (command == "cost")
            return cmdCost(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "hdham %s: %s\n", command.c_str(),
                     e.what());
        return 1;
    }
    return usage();
}

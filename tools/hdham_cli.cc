/**
 * @file
 * hdham command-line tool.
 *
 * Subcommands:
 *   train    --out PATH [--dim N] [--train-chars N] [--sentences N]
 *            [--threads N] [--format v1|legacy] [--stats-json PATH]
 *            [--trace PATH]
 *            train the 21-language classifier on the synthetic
 *            corpus and persist the learned hypervectors --
 *            hdham.model.v1 by default (mmap-able; embeds the item
 *            memory), or the legacy stream format
 *   classify --model PATH [--design am|dham|rham|aham] [--threads N]
 *            [--batch N] [--prune auto|on|off]
 *            [--cascade-prefix BITS] [--layout row|sliced]
 *            [--shards N] [--stats-json PATH]
 *            [--trace PATH] TEXT...
 *            classify text samples with the chosen HAM design,
 *            batching queries through searchBatch(); --prune /
 *            --cascade-prefix select the bound-pruned scan (exact;
 *            reported in the metrics "info" map next to "kernel");
 *            --layout / --shards re-lay the class store (bit-sliced
 *            cascade heads, per-shard scans) -- also exact
 *
 * --stats-json dumps a query-path observability snapshot (the
 * hdham.metrics.v1 schema of core/metrics.hh): per-design counters
 * (queries, rows scanned, bits sampled, blocks sensed, ...) and the
 * batch latency histogram with p50/p95/p99.
 *
 * --trace records every span on the query path (core/trace.hh) and
 * writes a Chrome trace-event file (hdham.trace.v1) that loads in
 * Perfetto / chrome://tracing, plus a per-span summary on stdout.
 *
 * --perf wraps the workload in a hardware-counter group
 * (core/perf_counters.hh): cycles, instructions, cache misses,
 * branch misses and page faults land in the metrics snapshot's
 * "perf" object with derived rates (IPC, misses per row), and traced
 * spans carry per-span deltas. Hosts where perf_event_open is denied
 * degrade gracefully: values are tagged unavailable (-1), info
 * "perf" says so, and results are bit-identical.
 *
 * --slow-query-us / --events-out capture queries slower than the
 * threshold -- span tree plus perf delta -- into a bounded
 * hdham.events.v1 JSONL log (core/event_log.hh) with exact drop
 * counts.
 *   save     --model PATH --out PATH [--layout row|sliced]
 *            [--shards N] [--cascade-prefix BITS]
 *            convert a model (either format) to hdham.model.v1,
 *            optionally re-laying the class store first so the file
 *            serves with the chosen physical layout
 *   load     --model PATH [--no-verify]
 *            mmap an hdham.model.v1 file, validate it and describe
 *            what it serves (the same loader classify uses)
 *   info     --model PATH
 *            describe a saved model
 *   cost     [--dim N] [--classes N]
 *            print the design-space cost table
 *
 * classify/info/load accept both model formats, routed by the
 * 8-byte magic sniff: hdham.model.v1 files are mmap'ed and -- with
 * --design am -- queried zero-copy in place; legacy stream models
 * are parsed into RAM (core/serialize.hh). Every --stats-json
 * snapshot records the model provenance (model.path, model.format,
 * and for v1 files model.version / model.checksum) in the "info"
 * map.
 *
 * The encoder configuration (item-memory seed, trigram size) is the
 * library default; v1 models trained by this tool additionally embed
 * the item memory, so classify rebuilds the exact encoder from the
 * file itself.
 */

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/distance.hh"
#include "core/event_log.hh"
#include "core/metrics.hh"
#include "core/model_file.hh"
#include "core/model_loader.hh"
#include "core/perf_counters.hh"
#include "core/serialize.hh"
#include "core/trace.hh"
#include "ham/a_ham.hh"
#include "ham/d_ham.hh"
#include "ham/design_space.hh"
#include "ham/r_ham.hh"
#include "lang/corpus.hh"
#include "lang/pipeline.hh"
#include "serve/commands.hh"

namespace
{

using namespace hdham;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  hdham train --out PATH [--dim N] [--train-chars N] "
        "[--sentences N] [--threads N] [--kernel K] "
        "[--format v1|legacy] [--perf] [--stats-json PATH] "
        "[--trace PATH]\n"
        "  hdham classify --model PATH "
        "[--design am|dham|rham|aham] "
        "[--threads N] [--batch N] [--kernel K] "
        "[--prune auto|on|off] [--cascade-prefix BITS] "
        "[--layout row|sliced] [--shards N] [--perf] "
        "[--slow-query-us US] [--events-out PATH] "
        "[--stats-json PATH] [--trace PATH] TEXT...\n"
        "  hdham save --model PATH --out PATH [--layout row|sliced] "
        "[--shards N] [--cascade-prefix BITS]\n"
        "  hdham load --model PATH [--no-verify]\n"
        "  hdham info --model PATH\n"
        "  hdham cost [--dim N] [--classes N]\n"
        "  hdham serve --model PATH (--socket PATH | --port N) "
        "[--threads N] [--prune M]\n"
        "              [--cascade-prefix BITS] [--layout L] "
        "[--shards N] [--kernel K] [--no-verify] [--trace]\n"
        "  hdham query (--socket PATH | --port N) "
        "ping|classify TEXT...|update [--assimilate]\n"
        "              [--threshold BITS] LABEL=TEXT..."
        "|swap|stats|trace|shutdown\n"
        "\n"
        "  --format F        on-disk format train writes: v1 "
        "(default; mmap-able hdham.model.v1, embeds the\n"
        "                    item memory) or legacy (stream format "
        "of core/serialize.hh)\n"
        "  --design am       serve queries from the software "
        "associative memory itself; a v1 model is then\n"
        "                    queried zero-copy straight from the "
        "mmap'ed file\n"
        "  --prune M         bound-pruned scan mode for prunable "
        "designs (dham): auto (default; prune when the\n"
        "                    bound is tight), on, off -- results are "
        "bit-identical in every mode\n"
        "  --cascade-prefix BITS\n"
        "                    score rows on the first BITS components "
        "first, then refine survivors (0 = off);\n"
        "                    exact for any value\n"
        "  --layout L        physical class-store layout for "
        "prunable designs (dham): row (default) or sliced\n"
        "                    (cascade-prefix head words stored "
        "contiguously; requires --cascade-prefix);\n"
        "                    results are bit-identical either way\n"
        "  --shards N        partition the class store into N "
        "contiguous row shards scanned independently\n"
        "                    (0 = one per hardware thread; default "
        "1); results are bit-identical for any N\n"
        "  --threads N       scan workers for batched search (0 = "
        "all hardware threads; default 1)\n"
        "  --batch N         queries per searchBatch() call (0 = "
        "all at once; default 0)\n"
        "  --kernel K        Hamming distance kernel: scalar, "
        "unrolled, sse2, neon, avx2, avx512 or auto (default:\n"
        "                    HDHAM_KERNEL env, else the widest "
        "backend this CPU supports; results are\n"
        "                    bit-identical for every kernel)\n"
        "  --perf            measure the workload with hardware "
        "counters (perf_event_open): the metrics snapshot\n"
        "                    gains a \"perf\" object (cycles, "
        "instructions, cache/branch misses, page faults,\n"
        "                    IPC, misses per row) and traced spans "
        "carry per-span deltas; denied or non-Linux hosts\n"
        "                    degrade to tagged -1 values with "
        "results unchanged\n"
        "  --slow-query-us US\n"
        "                    capture queries at least US "
        "microseconds slow into the --events-out log (0 =\n"
        "                    every query; default 1000)\n"
        "  --events-out PATH write captured slow queries as "
        "hdham.events.v1 JSON Lines (span tree + perf\n"
        "                    delta per query, bounded, exact drop "
        "counts)\n"
        "  --stats-json PATH write a query-path metrics snapshot "
        "(hdham.metrics.v1 JSON)\n"
        "  --trace PATH      write a Chrome trace-event file "
        "(hdham.trace.v1 JSON, loads in Perfetto) and print a\n"
        "                    per-span timing summary\n");
    return 2;
}

/** Pull `--flag value` or `--flag=value` out of the argument list. */
std::string
option(std::vector<std::string> &args, const std::string &flag,
       const std::string &fallback)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == flag && i + 1 < args.size()) {
            const std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            return value;
        }
        if (args[i].size() > flag.size() + 1 &&
            args[i].compare(0, flag.size(), flag) == 0 &&
            args[i][flag.size()] == '=') {
            const std::string value = args[i].substr(flag.size() + 1);
            args.erase(args.begin() + static_cast<long>(i));
            return value;
        }
    }
    return fallback;
}

std::size_t
numericOption(std::vector<std::string> &args, const std::string &flag,
              std::size_t fallback)
{
    const std::string value =
        option(args, flag, std::to_string(fallback));
    return std::strtoull(value.c_str(), nullptr, 10);
}

/** Consume a valueless `--flag`; true when it was present. */
bool
boolOption(std::vector<std::string> &args, const std::string &flag)
{
    const auto it = std::find(args.begin(), args.end(), flag);
    if (it == args.end())
        return false;
    args.erase(it);
    return true;
}

/**
 * Apply `--kernel NAME` if present. Returns false (after printing a
 * diagnostic) when the name is unknown or the kernel is not supported
 * on this CPU; without the flag the env/cpuid default stands.
 */
bool
kernelOption(std::vector<std::string> &args, const char *command)
{
    const std::string name = option(args, "--kernel", "");
    if (name.empty())
        return true;
    try {
        distance::setKernelByName(name);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s: %s\n", command, e.what());
        return false;
    }
    return true;
}

/**
 * Write one JSON artifact through @p body and report the path on
 * stdout. Shared by the --stats-json and --trace writers so the
 * open/flush/error handling lives in one place.
 */
void
writeArtifact(const char *what, const std::string &path,
              const std::function<void(std::ostream &)> &body)
{
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error(std::string(what) +
                                 ": cannot open " + path);
    }
    body(out);
    out.flush();
    if (!out) {
        throw std::runtime_error(std::string(what) +
                                 ": write failed: " + path);
    }
    std::printf("%s written to %s\n", what, path.c_str());
}

/**
 * Common tail of every --stats-json run: the model/run gauges every
 * subcommand reports, then the write. Callers attach their per-design
 * counters (and any extra gauges) before handing the registry over.
 */
void
writeStatsJson(metrics::Registry &registry, const std::string &path,
               std::size_t dim, std::size_t classes,
               std::size_t threads)
{
    registry.setGauge("model.dim", static_cast<double>(dim));
    registry.setGauge("model.classes", static_cast<double>(classes));
    registry.setGauge("run.threads", static_cast<double>(threads));
    registry.setInfo("kernel", distance::activeKernelName());
    registry.setInfo("kernels_available",
                     distance::availableKernelList());
    writeArtifact("metrics", path, [&](std::ostream &out) {
        registry.writeJson(out);
    });
}

/**
 * Deactivate the tracer, write the Chrome trace file, and print the
 * per-span summary. Call after the traced workload has finished (all
 * batch scans joined).
 */
void
writeTrace(trace::Tracer &tracer, const std::string &path)
{
    trace::setActive(nullptr);
    writeArtifact("trace", path, [&](std::ostream &out) {
        tracer.writeChromeJson(out);
    });
    tracer.writeSummary(std::cout);
}

int
cmdTrain(std::vector<std::string> args)
{
    const std::string out = option(args, "--out", "");
    if (out.empty()) {
        std::fprintf(stderr, "train: --out is required\n");
        return 2;
    }
    lang::CorpusConfig corpusCfg;
    corpusCfg.trainChars = numericOption(args, "--train-chars",
                                         corpusCfg.trainChars);
    corpusCfg.testSentences = numericOption(args, "--sentences",
                                            corpusCfg.testSentences);
    lang::PipelineConfig pipeCfg;
    pipeCfg.dim = numericOption(args, "--dim", pipeCfg.dim);
    const std::size_t threads = numericOption(args, "--threads", 1);
    const std::string statsPath = option(args, "--stats-json", "");
    const std::string tracePath = option(args, "--trace", "");
    const bool perfOn = boolOption(args, "--perf");
    const std::string format = option(args, "--format", "v1");
    if (format != "v1" && format != "legacy") {
        std::fprintf(stderr,
                     "train: unknown format '%s' (expected v1 or "
                     "legacy)\n",
                     format.c_str());
        return 2;
    }
    if (!kernelOption(args, "train"))
        return 2;

    std::printf("training %zu languages at D = %zu...\n",
                corpusCfg.numLanguages, pipeCfg.dim);
    const lang::SyntheticCorpus corpus(corpusCfg);

    // Activate tracing before the pipeline constructor so the
    // lang.train / lang.encode spans are captured too. The counter
    // workload starts here as well: training plus evaluation.
    trace::Tracer tracer;
    tracer.setCapturePerf(perfOn);
    if (!tracePath.empty())
        trace::setActive(&tracer);
    std::optional<perf::ProcessCounters> workload;
    if (perfOn)
        workload.emplace();

    lang::RecognitionPipeline pipeline(corpus, pipeCfg);

    metrics::QueryMetrics memoryMetrics;
    metrics::ClassificationMetrics evalMetrics;
    if (!statsPath.empty())
        pipeline.attachMetrics(&evalMetrics, &memoryMetrics);

    const auto eval = pipeline.evaluateExact(threads);
    std::printf("held-out accuracy: %.1f%% (%zu/%zu)\n",
                100.0 * eval.accuracy(), eval.correct, eval.total);

    if (format == "v1") {
        modelfile::SaveOptions saveOpts;
        saveOpts.items = &pipeline.itemMemory();
        modelfile::save(out, pipeline.memory(), saveOpts);
    } else {
        serialize::saveMemory(out, pipeline.memory());
    }
    std::printf("model written to %s (%s)\n", out.c_str(),
                format == "v1" ? "hdham.model.v1" : "legacy");

    if (!tracePath.empty())
        writeTrace(tracer, tracePath);

    if (!statsPath.empty()) {
        metrics::Registry registry;
        registry.attachQuery("am", memoryMetrics);
        registry.attachClassification("lang", evalMetrics);
        if (perfOn) {
            perf::exportTo(registry, workload->delta(),
                           memoryMetrics.rowsScanned.value());
        } else {
            registry.setInfo("perf", "off");
        }
        writeStatsJson(registry, statsPath, pipeCfg.dim,
                       pipeline.memory().size(), threads);
    }
    return 0;
}

std::unique_ptr<ham::Ham>
makeDesign(const std::string &name, std::size_t dim)
{
    if (name == "dham") {
        ham::DHamConfig cfg;
        cfg.dim = dim;
        return std::make_unique<ham::DHam>(cfg);
    }
    if (name == "rham") {
        ham::RHamConfig cfg;
        cfg.dim = dim;
        return std::make_unique<ham::RHam>(cfg);
    }
    if (name == "aham") {
        ham::AHamConfig cfg;
        cfg.dim = dim;
        return std::make_unique<ham::AHam>(cfg);
    }
    return nullptr;
}

int
cmdClassify(std::vector<std::string> args)
{
    const std::string path = option(args, "--model", "");
    const std::string design = option(args, "--design", "dham");
    const std::size_t threads = numericOption(args, "--threads", 1);
    const std::size_t batch = numericOption(args, "--batch", 0);
    const std::string statsPath = option(args, "--stats-json", "");
    const std::string tracePath = option(args, "--trace", "");
    const bool perfOn = boolOption(args, "--perf");
    const std::string eventsPath = option(args, "--events-out", "");
    const std::string slowArg = option(args, "--slow-query-us", "");
    if (!slowArg.empty() && eventsPath.empty()) {
        std::fprintf(stderr,
                     "classify: --slow-query-us needs --events-out "
                     "(nowhere to write captured queries)\n");
        return 2;
    }
    // 0 is a valid threshold (capture every query), so "flag absent"
    // is distinguished from the value, not defaulted numerically.
    const double slowQueryUs =
        slowArg.empty() ? 1000.0 : std::strtod(slowArg.c_str(),
                                               nullptr);
    const std::string pruneName = option(args, "--prune", "auto");
    const std::size_t cascadePrefix =
        numericOption(args, "--cascade-prefix", 0);
    if (!kernelOption(args, "classify"))
        return 2;
    ScanPolicy scanPolicy;
    if (!parsePruneMode(pruneName, &scanPolicy.prune)) {
        std::fprintf(stderr,
                     "classify: unknown prune mode '%s' (expected "
                     "auto, on or off)\n",
                     pruneName.c_str());
        return 2;
    }
    scanPolicy.cascadePrefix = cascadePrefix;
    const std::string layoutName = option(args, "--layout", "row");
    const std::size_t shards = numericOption(args, "--shards", 1);
    StoreLayout storeLayout;
    if (!parseRowLayout(layoutName, &storeLayout.layout)) {
        std::fprintf(stderr,
                     "classify: unknown layout '%s' (expected row "
                     "or sliced)\n",
                     layoutName.c_str());
        return 2;
    }
    if (storeLayout.layout == RowLayout::Sliced &&
        cascadePrefix == 0) {
        std::fprintf(stderr,
                     "classify: --layout sliced requires "
                     "--cascade-prefix (the slice holds the "
                     "cascade's head words)\n");
        return 2;
    }
    storeLayout.shards = shards;
    storeLayout.slicePrefix = cascadePrefix;
    if (path.empty() || args.empty()) {
        std::fprintf(stderr, "classify: need --model and at least "
                             "one TEXT argument\n");
        return 2;
    }
    modelload::LoadedModel model =
        modelload::LoadedModel::open(path);
    AssociativeMemory &memory = model.memory();

    const bool relayout =
        storeLayout.layout != RowLayout::RowMajor || shards != 1;
    std::unique_ptr<ham::Ham> hardware;
    if (design != "am") {
        hardware = makeDesign(design, memory.dim());
        if (!hardware) {
            std::fprintf(stderr, "classify: unknown design '%s'\n",
                         design.c_str());
            return 2;
        }
        hardware->loadFrom(memory);
        hardware->setScanPolicy(scanPolicy);
        if (relayout)
            hardware->setStoreLayout(storeLayout);
    } else {
        // Serve from the associative memory itself: a v1 model is
        // queried zero-copy straight from the mapping, whose
        // physical layout is the file's -- re-lay with `hdham save`.
        if (model.mapped() && relayout) {
            std::fprintf(stderr,
                         "classify: --design am serves a mapped "
                         "model in its on-disk layout; use `hdham "
                         "save --layout/--shards` to re-lay the "
                         "file\n");
            return 2;
        }
        if (!model.mapped() && relayout)
            memory.setStoreLayout(storeLayout);
        memory.setScanPolicy(scanPolicy);
    }

    metrics::QueryMetrics designMetrics;
    if (!statsPath.empty()) {
        if (hardware)
            hardware->attachMetrics(&designMetrics);
        else
            memory.attachMetrics(&designMetrics);
    }

    trace::Tracer tracer;
    tracer.setCapturePerf(perfOn);
    if (!tracePath.empty())
        trace::setActive(&tracer);

    // The --perf workload covers encoding and the batched search;
    // parallelFor workers fork after this point, so the inherited
    // counters aggregate their work too.
    std::optional<perf::ProcessCounters> workload;
    if (perfOn)
        workload.emplace();

    // Rebuild the encoder: from the item memory embedded in a v1
    // model when present, else the library-default configuration
    // the model was trained with.
    const lang::PipelineConfig defaults;
    const ItemMemory items =
        model.mapped() && model.modelView()->hasItemMemory()
            ? model.modelView()->itemMemory()
            : ItemMemory(TextAlphabet::size, memory.dim(),
                         defaults.seed);
    const Encoder encoder(items, defaults.ngram);
    Rng rng(defaults.seed ^ 0x636c6966ULL);

    // Encode every usable sample up front, then classify through the
    // batch path in --batch sized chunks (0 = one shot).
    std::vector<Hypervector> queries;
    std::vector<std::size_t> queryOf(args.size(),
                                     args.size()); // skip marker
    {
        TRACE_SPAN("classify.encode");
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (args[i].size() < defaults.ngram)
                continue;
            queryOf[i] = queries.size();
            queries.push_back(encoder.encode(args[i], rng));
        }
    }

    // Arm slow-query capture for the duration of the batch loop; the
    // batch executor consults it per chunk and serves each query
    // under a span collector.
    events::EventLog eventLog(65536);
    if (!eventsPath.empty())
        events::setSlowQueryCapture({&eventLog, slowQueryUs, perfOn});

    std::vector<std::size_t> winners;
    winners.reserve(queries.size());
    const std::size_t chunk = batch == 0 ? queries.size() : batch;
    for (std::size_t start = 0; start < queries.size();
         start += chunk) {
        const std::size_t end =
            std::min(start + chunk, queries.size());
        const std::vector<Hypervector> slice(
            queries.begin() + static_cast<long>(start),
            queries.begin() + static_cast<long>(end));
        if (hardware) {
            for (const auto &hit :
                 hardware->searchBatch(slice, threads))
                winners.push_back(hit.classId);
        } else {
            for (const auto &hit : memory.searchBatch(slice, threads))
                winners.push_back(hit.classId);
        }
    }

    if (!eventsPath.empty()) {
        events::clearSlowQueryCapture();
        writeArtifact("events", eventsPath, [&](std::ostream &out) {
            eventLog.writeJsonl(out);
        });
        std::printf("slow queries   : %zu captured, %llu dropped "
                    "(threshold %.0f us)\n",
                    eventLog.size(),
                    static_cast<unsigned long long>(
                        eventLog.dropped()),
                    slowQueryUs);
    }

    {
        TRACE_SPAN("classify.decide");
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (queryOf[i] == args.size()) {
                std::printf("%-14s <- \"%s\" (too short)\n", "?",
                            args[i].c_str());
                continue;
            }
            std::printf("%-14s <- \"%.60s\"\n",
                        memory.labelOf(winners[queryOf[i]]).c_str(),
                        args[i].c_str());
        }
    }

    if (!tracePath.empty())
        writeTrace(tracer, tracePath);

    if (!statsPath.empty()) {
        metrics::Registry registry;
        registry.attachQuery(design, designMetrics);
        registry.setGauge("run.batch", static_cast<double>(chunk));
        registry.setInfo("prune", pruneModeName(scanPolicy.prune));
        registry.setInfo("cascade_prefix",
                         std::to_string(scanPolicy.cascadePrefix));
        registry.setInfo("layout",
                         rowLayoutName(storeLayout.layout));
        registry.setGauge("run.shards", static_cast<double>(shards));
        if (perfOn) {
            perf::exportTo(registry, workload->delta(),
                           designMetrics.rowsScanned.value());
        } else {
            registry.setInfo("perf", "off");
        }
        // How much of the mapped model the scan actually pulled into
        // memory -- the mmap cold-start story in two gauges.
        model.recordResidency(registry);
        model.recordInfo(registry);
        writeStatsJson(registry, statsPath, memory.dim(),
                       memory.size(), threads);
    }
    return 0;
}

/**
 * `hdham save`: convert a model (either format) to hdham.model.v1,
 * optionally re-laying the class store so the file serves with the
 * chosen physical layout. Side memories embedded in a v1 input are
 * carried over.
 */
int
cmdSave(std::vector<std::string> args)
{
    const std::string in = option(args, "--model", "");
    const std::string out = option(args, "--out", "");
    if (in.empty() || out.empty()) {
        std::fprintf(stderr,
                     "save: --model and --out are required\n");
        return 2;
    }
    const std::string layoutName = option(args, "--layout", "");
    const std::size_t shards = numericOption(args, "--shards", 0);
    const std::size_t cascadePrefix =
        numericOption(args, "--cascade-prefix", 0);
    StoreLayout storeLayout;
    const bool relayout = !layoutName.empty() || shards != 0;
    if (relayout) {
        if (!parseRowLayout(layoutName.empty() ? "row" : layoutName,
                            &storeLayout.layout)) {
            std::fprintf(stderr,
                         "save: unknown layout '%s' (expected row "
                         "or sliced)\n",
                         layoutName.c_str());
            return 2;
        }
        if (storeLayout.layout == RowLayout::Sliced &&
            cascadePrefix == 0) {
            std::fprintf(stderr,
                         "save: --layout sliced requires "
                         "--cascade-prefix (the slice holds the "
                         "cascade's head words)\n");
            return 2;
        }
        storeLayout.shards = shards == 0 ? 1 : shards;
        storeLayout.slicePrefix = cascadePrefix;
    }

    modelload::LoadedModel model = modelload::LoadedModel::open(in);

    // Carry any side memories embedded in a v1 input across the
    // conversion.
    std::optional<ItemMemory> items;
    std::optional<LevelItemMemory> levels;
    if (model.mapped()) {
        if (model.modelView()->hasItemMemory())
            items.emplace(model.modelView()->itemMemory());
        if (model.modelView()->hasLevelMemory())
            levels.emplace(model.modelView()->levelMemory());
    }
    modelfile::SaveOptions saveOpts;
    saveOpts.items = items.has_value() ? &*items : nullptr;
    saveOpts.levels = levels.has_value() ? &*levels : nullptr;

    // Stream to a sibling temp file and rename it into place once
    // the writer is done. Writing --out directly would, when it
    // names the same file as --model, truncate the mapping the
    // streaming writer is still reading from (SIGBUS: MAP_PRIVATE
    // does not survive truncation of the backing file); the rename
    // also keeps a failed save from leaving a half-written model at
    // the destination.
    const std::string tmp =
        out + ".tmp." + std::to_string(::getpid());
    try {
        if (relayout) {
            AssociativeMemory relaid =
                modelload::materialize(model.memory());
            relaid.setStoreLayout(storeLayout);
            modelfile::save(tmp, relaid, saveOpts);
        } else {
            // A mapped input streams straight from the mapping; a
            // legacy input streams from its in-RAM store. Either way
            // no second full-model buffer is built.
            modelfile::save(tmp, model.memory(), saveOpts);
        }
        if (std::rename(tmp.c_str(), out.c_str()) != 0) {
            const int err = errno;
            std::remove(tmp.c_str());
            std::fprintf(stderr,
                         "save: cannot move %s into place: %s\n",
                         out.c_str(), std::strerror(err));
            return 1;
        }
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }

    const modelfile::ModelView written(out);
    std::printf("model written to %s (hdham.model.v1, %zu classes, "
                "D = %zu, checksum %08x)\n",
                out.c_str(), written.classes(), written.dim(),
                written.checksum());
    return 0;
}

/**
 * `hdham load`: mmap and validate an hdham.model.v1 file with the
 * same loader classify uses, then describe what it serves.
 */
int
cmdLoad(std::vector<std::string> args)
{
    const std::string path = option(args, "--model", "");
    if (path.empty()) {
        std::fprintf(stderr, "load: --model is required\n");
        return 2;
    }
    modelload::OpenOptions opts;
    const auto noVerify =
        std::find(args.begin(), args.end(), "--no-verify");
    if (noVerify != args.end()) {
        opts.verifyChecksums = false;
        args.erase(noVerify);
    }
    // The shared open path (core/model_loader.hh): the exact loader
    // classify and hdham_server use.
    const modelload::LoadedModel model =
        modelload::LoadedModel::open(path, opts);
    if (!model.mapped()) {
        std::fprintf(stderr,
                     "load: %s is a legacy stream model (nothing is "
                     "mapped); convert with `hdham save`\n",
                     path.c_str());
        return 1;
    }
    const modelfile::ModelView &view = *model.modelView();
    const AssociativeMemory &memory = model.memory();
    std::printf("format         : hdham.model.v%u (mmap)\n",
                view.version());
    std::printf("file size      : %zu bytes\n", view.fileSize());
    std::printf("checksum       : %08x%s\n", view.checksum(),
                opts.verifyChecksums ? " (verified)"
                                     : " (not verified)");
    std::printf("dimensionality : %zu\n", memory.dim());
    std::printf("classes        : %zu\n", memory.size());
    const StoreLayout &layout = view.layout();
    std::printf("layout         : %s, %zu shard%s",
                rowLayoutName(layout.layout), layout.shards,
                layout.shards == 1 ? "" : "s");
    if (layout.layout == RowLayout::Sliced)
        std::printf(", slice prefix %zu bits", layout.slicePrefix);
    std::printf("\n");
    std::printf("item memory    : %s\n",
                view.hasItemMemory() ? "embedded" : "absent");
    std::printf("level memory   : %s\n",
                view.hasLevelMemory() ? "embedded" : "absent");
    // Loading touched only the header and the checksum pass, so this
    // shows how much of the file validation left resident.
    const perf::Residency res =
        perf::residency(view.mapBase(), view.fileSize());
    if (res.residentBytes >= 0) {
        std::printf("resident       : %lld of %lld mapped bytes\n",
                    static_cast<long long>(res.residentBytes),
                    static_cast<long long>(res.mappedBytes));
    }
    return 0;
}

int
cmdInfo(std::vector<std::string> args)
{
    const std::string path = option(args, "--model", "");
    if (path.empty()) {
        std::fprintf(stderr, "info: --model is required\n");
        return 2;
    }
    const modelload::LoadedModel model =
        modelload::LoadedModel::open(path);
    const AssociativeMemory &memory = model.memory();
    std::printf("format         : %s\n",
                model.mapped() ? "hdham.model.v1 (mmap)"
                               : "legacy stream");
    std::printf("dimensionality : %zu\n", memory.dim());
    std::printf("classes        : %zu\n", memory.size());
    if (memory.size() >= 2) {
        std::printf("min class margin: %zu bits\n",
                    memory.minPairwiseDistance());
    }
    for (std::size_t id = 0; id < memory.size(); ++id) {
        std::printf("  [%2zu] %-14s (%zu ones)\n", id,
                    memory.labelOf(id).c_str(),
                    memory.vectorOf(id).popcount());
    }
    return 0;
}

int
cmdCost(std::vector<std::string> args)
{
    const std::size_t dim = numericOption(args, "--dim", 10000);
    const std::size_t classes =
        numericOption(args, "--classes", 21);
    std::printf("design space at D = %zu, C = %zu:\n", dim, classes);
    std::printf("%8s %10s | %-26s %10s %9s %10s\n", "design",
                "target", "knobs", "energy/pJ", "delay/ns", "EDP");
    for (const ham::DesignPoint &point :
         ham::fullDesignSpace(dim, classes)) {
        std::printf("%8s %10s | %-26s %10.2f %9.2f %10.3g\n",
                    ham::designName(point.design),
                    ham::targetName(point.target),
                    point.description.c_str(), point.cost.energyPj,
                    point.cost.delayNs, point.cost.edp());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "train")
            return cmdTrain(std::move(args));
        if (command == "classify")
            return cmdClassify(std::move(args));
        if (command == "save")
            return cmdSave(std::move(args));
        if (command == "load")
            return cmdLoad(std::move(args));
        if (command == "info")
            return cmdInfo(std::move(args));
        if (command == "cost")
            return cmdCost(std::move(args));
        if (command == "serve")
            return serve::runServeCommand(std::move(args));
        if (command == "query")
            return serve::runQueryCommand(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "hdham %s: %s\n", command.c_str(),
                     e.what());
        return 1;
    }
    return usage();
}

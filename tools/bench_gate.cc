/**
 * @file
 * Query-path performance gate.
 *
 * Runs the two query-path microbenchmark binaries
 * (micro_batch_throughput, micro_software_am), collects queries/sec
 * per design x thread count plus the batch-latency p50/p95 from the
 * metrics snapshot, and compares the result against the committed
 * baseline at the repo root (BENCH_query_path.json, schema
 * hdham.bench.v1).
 *
 *   bench_gate [--baseline PATH] [--tolerance F] [--update-baseline]
 *              [--batch-bench PATH] [--micro-bench PATH]
 *              [--filter REGEX] [--skip-micro] [--strict-host]
 *
 * Default mode is the gate: every benchmark named in the baseline
 * must reach at least (1 - tolerance) of its baseline throughput;
 * any miss (or a benchmark that disappeared) exits non-zero with a
 * per-benchmark report. Latency quantiles are recorded for eyeballs
 * and dashboards but never gate -- wall-clock quantiles on shared CI
 * hardware are too noisy to fail a build on. The batch suite runs
 * with --perf, so the baseline also records IPC and the cache-miss
 * rate next to queries/sec -- informational like the quantiles,
 * never gated (and absent on hosts that deny perf_event_open).
 * BM_SnapshotServe's user counters (swap count, build/swap publish
 * latency, worst reader acquire stall) land in the baseline's
 * "serve" object under the same contract: recorded, reported,
 * never gated.
 *
 * A baseline recorded on a different machine (thread count or CPU
 * capability mismatch) cannot gate this one: by default the run
 * reports the comparison as a labeled warning and exits 0, since
 * cross-machine ratios are noise, not regressions. --strict-host
 * restores the old hard failure for environments that pin their
 * benchmark hosts.
 *
 * --update-baseline reruns the suite and rewrites the baseline file
 * instead of comparing. Refresh procedure: on a quiet machine run
 *
 *   ./build/tools/bench_gate --update-baseline
 *
 * from the repo root and commit the regenerated
 * BENCH_query_path.json together with the change that moved the
 * numbers.
 *
 * The benchmark binaries are located relative to this executable
 * (../bench/...) unless overridden, so the tool works from any
 * working directory inside the build tree.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/distance.hh"
#include "core/json.hh"

namespace
{

using hdham::json::parse;
using hdham::json::Value;
using hdham::json::writeEscaped;
using hdham::json::writeNumber;

struct LatencySummary
{
    double p50Us = 0.0;
    double p95Us = 0.0;
};

/** Everything one suite run produces. */
struct SuiteResult
{
    /** queries/sec keyed by google-benchmark name. */
    std::map<std::string, double> throughput;
    /** real time per iteration (ns) for benchmarks without a rate. */
    std::map<std::string, double> referenceNs;
    /** batch-latency quantiles keyed by histogram name. */
    std::map<std::string, LatencySummary> latencyUs;
    /** Hamming kernel the batch suite ran with (from its metrics
     *  snapshot); empty when the snapshot predates kernel info. */
    std::string kernel;
    /** Rows the cascade benchmark pruned (am_cascade.rows_pruned);
     *  -1 when the snapshot has no such counter. */
    double cascadeRowsPruned = -1.0;
    /** Hardware-counter facts from the batch suite's --perf run
     *  (ipc, llc_miss_per_kinst, available, ...); empty when the
     *  host denied perf_event_open. Informational only. */
    std::map<std::string, double> perf;
    /** Snapshot-serving counters from BM_SnapshotServe (swap count,
     *  build/swap latency, worst reader acquire stall), keyed
     *  "<benchmark>.<counter>". Informational only: swap latency on
     *  shared hardware is as noisy as the wall-clock quantiles. */
    std::map<std::string, double> serve;
};

/** Hardware threads of the machine running the gate. */
std::size_t
hostThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * CPU capability fingerprint: the comma-joined list of Hamming
 * backends this host can execute, straight from the kernel
 * registry. Coarse on purpose -- it changes exactly when the set of
 * benchmarkable backends changes, which is what makes two machines'
 * numbers incomparable.
 */
std::string
hostCpuFlags()
{
    return hdham::distance::availableKernelList();
}

/**
 * The backends compiled into this binary (independent of host
 * support). Recorded next to the available list so a baseline also
 * remembers which kernels the recording *build* even contained --
 * a rebuild that drops or gains a backend is as incomparable as a
 * CPU change.
 */
std::string
hostCompiledKernels()
{
    return hdham::distance::compiledKernelList();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_gate [--baseline PATH] [--tolerance F]\n"
        "                  [--update-baseline] [--batch-bench PATH]\n"
        "                  [--micro-bench PATH] [--filter REGEX]\n"
        "                  [--skip-micro]\n"
        "\n"
        "  --baseline PATH   baseline file (default "
        "BENCH_query_path.json)\n"
        "  --tolerance F     allowed throughput drop, fraction "
        "(default 0.25)\n"
        "  --update-baseline rewrite the baseline instead of "
        "comparing\n"
        "  --batch-bench P   micro_batch_throughput binary\n"
        "  --micro-bench P   micro_software_am binary\n"
        "  --filter REGEX    forwarded as --benchmark_filter\n"
        "  --skip-micro      gate on micro_batch_throughput only\n"
        "  --strict-host     fail (instead of warn and exit 0) when "
        "the baseline was recorded on a\n"
        "                    different host fingerprint\n");
    return 2;
}

/** Directory part of @p path including the trailing slash. */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

/** Run @p command and capture its stdout. Throws on failure. */
std::string
capture(const std::string &command)
{
    std::FILE *pipe = ::popen(command.c_str(), "r");
    if (!pipe) {
        throw std::runtime_error("bench_gate: cannot run: " +
                                 command);
    }
    std::string output;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        output.append(buf, got);
    const int status = ::pclose(pipe);
    if (status != 0) {
        throw std::runtime_error("bench_gate: command failed (" +
                                 std::to_string(status) +
                                 "): " + command);
    }
    return output;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("bench_gate: cannot read " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Shell-quote @p path for the popen command line. */
std::string
quoted(const std::string &path)
{
    std::string out = "'";
    for (const char c : path) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

/**
 * Fold one google-benchmark JSON document into @p result: rate
 * benchmarks land in throughput (items == queries for the batch
 * suite), the rest keep their real time as a reference number.
 */
void
collectBenchmarks(const std::string &jsonText, SuiteResult &result)
{
    const Value doc = parse(jsonText);
    for (const Value &bench : doc.at("benchmarks").items()) {
        const Value *runType = bench.find("run_type");
        if (runType && runType->asString() != "iteration")
            continue;
        const std::string &name = bench.at("name").asString();
        if (const Value *rate = bench.find("items_per_second")) {
            result.throughput[name] = rate->asNumber();
        } else if (const Value *rt = bench.find("real_time")) {
            result.referenceNs[name] = rt->asNumber();
        }
        // The serving benchmark reports its swap/stall counters as
        // google-benchmark user counters; keep them next to the
        // throughput numbers, informational like the perf facts.
        if (name.rfind("BM_SnapshotServe", 0) == 0) {
            for (const char *key :
                 {"swaps", "build_us_mean", "swap_us_mean",
                  "swap_us_max", "acquire_us_max"}) {
                if (const Value *v = bench.find(key))
                    result.serve[name + "." + key] = v->asNumber();
            }
        }
    }
}

/**
 * Pull the batch-latency quantiles and the selected Hamming kernel
 * out of a metrics snapshot.
 */
void
collectLatency(const std::string &jsonText, SuiteResult &result)
{
    const Value doc = parse(jsonText);
    if (const Value *info = doc.find("info")) {
        if (const Value *kernel = info->find("kernel"))
            result.kernel = kernel->asString();
    }
    if (const Value *counters = doc.find("counters")) {
        if (const Value *pruned =
                counters->find("am_cascade.rows_pruned"))
            result.cascadeRowsPruned = pruned->asNumber();
    }
    // The perf object is present whenever --perf ran; keep only the
    // real readings (unavailable counters are tagged -1).
    if (const Value *perf = doc.find("perf")) {
        for (const auto &[name, value] : perf->members()) {
            if (value.asNumber() >= 0.0)
                result.perf[name] = value.asNumber();
        }
    }
    const Value *histograms = doc.find("histograms");
    if (!histograms)
        return;
    for (const auto &[name, hist] : histograms->members()) {
        if (name.find("batch_latency_us") == std::string::npos)
            continue;
        const Value *count = hist.find("count");
        if (count && count->asNumber() == 0)
            continue;
        LatencySummary summary;
        if (const Value *p50 = hist.find("p50_us"))
            summary.p50Us = p50->asNumber();
        if (const Value *p95 = hist.find("p95_us"))
            summary.p95Us = p95->asNumber();
        result.latencyUs[name] = summary;
    }
}

SuiteResult
runSuite(const std::string &batchBench, const std::string &microBench,
         const std::string &filter, bool skipMicro)
{
    SuiteResult result;
    const std::string filterArg =
        filter.empty() ? std::string()
                       : " --benchmark_filter=" + quoted(filter);

    const std::string statsPath = batchBench + ".stats.tmp.json";
    std::fprintf(stderr, "bench_gate: running %s...\n",
                 batchBench.c_str());
    collectBenchmarks(
        capture(quoted(batchBench) + " --benchmark_format=json" +
                " --perf --stats-json " + quoted(statsPath) +
                filterArg + " 2>/dev/null"),
        result);
    collectLatency(readFile(statsPath), result);
    std::remove(statsPath.c_str());

    if (!skipMicro) {
        std::fprintf(stderr, "bench_gate: running %s...\n",
                     microBench.c_str());
        collectBenchmarks(
            capture(quoted(microBench) +
                    " --benchmark_format=json" + filterArg +
                    " 2>/dev/null"),
            result);
    }
    return result;
}

void
writeBaseline(std::ostream &out, const SuiteResult &result,
              double tolerance)
{
    out << "{\n";
    out << "  \"schema\": \"hdham.bench.v1\",\n";
    out << "  \"tolerance\": ";
    writeNumber(out, tolerance);
    out << ",\n";

    if (!result.kernel.empty()) {
        out << "  \"kernel\": ";
        writeEscaped(out, result.kernel);
        out << ",\n";
    }

    // Host metadata next to the kernel: baseline numbers are only
    // meaningful on the machine that produced them, so the gate
    // refuses to compare across a thread-count or CPU-capability
    // change instead of reporting phantom regressions.
    out << "  \"host\": {\"threads\": ";
    writeNumber(out, static_cast<double>(hostThreads()));
    out << ", \"cpu\": ";
    writeEscaped(out, hostCpuFlags());
    out << ", \"kernels_compiled\": ";
    writeEscaped(out, hostCompiledKernels());
    out << "},\n";

    // Informational hardware-counter facts next to the throughput
    // numbers (IPC, cache-miss rates). Never gated; absent when the
    // recording host denied perf_event_open.
    if (!result.perf.empty()) {
        out << "  \"perf\": {";
        bool firstPerf = true;
        for (const auto &[name, value] : result.perf) {
            out << (firstPerf ? "\n    " : ",\n    ");
            writeEscaped(out, name);
            out << ": ";
            writeNumber(out, value);
            firstPerf = false;
        }
        out << "\n  },\n";
    }

    // Snapshot-swap latency and reader-stall facts from the serving
    // benchmark. Same contract as the perf object: recorded for
    // dashboards and eyeballs, never gated.
    if (!result.serve.empty()) {
        out << "  \"serve\": {";
        bool firstServe = true;
        for (const auto &[name, value] : result.serve) {
            out << (firstServe ? "\n    " : ",\n    ");
            writeEscaped(out, name);
            out << ": ";
            writeNumber(out, value);
            firstServe = false;
        }
        out << "\n  },\n";
    }

    out << "  \"throughput_qps\": {";
    bool first = true;
    for (const auto &[name, qps] : result.throughput) {
        out << (first ? "\n    " : ",\n    ");
        writeEscaped(out, name);
        out << ": ";
        writeNumber(out, qps);
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"latency_us\": {";
    first = true;
    for (const auto &[name, summary] : result.latencyUs) {
        out << (first ? "\n    " : ",\n    ");
        writeEscaped(out, name);
        out << ": {\"p50_us\": ";
        writeNumber(out, summary.p50Us);
        out << ", \"p95_us\": ";
        writeNumber(out, summary.p95Us);
        out << "}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"reference_ns\": {";
    first = true;
    for (const auto &[name, ns] : result.referenceNs) {
        out << (first ? "\n    " : ",\n    ");
        writeEscaped(out, name);
        out << ": ";
        writeNumber(out, ns);
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n";
    out << "}\n";
}

/**
 * Gate the measured throughput against the baseline document.
 * Returns the number of failures (regressions or missing
 * benchmarks).
 */
int
gate(const Value &baseline, const SuiteResult &current,
     double tolerance, bool skipMicro)
{
    int failures = 0;
    if (!current.kernel.empty()) {
        const Value *baseKernel = baseline.find("kernel");
        std::printf("kernel: %s (baseline: %s)\n",
                    current.kernel.c_str(),
                    baseKernel ? baseKernel->asString().c_str()
                               : "unrecorded");
        // A same-host run that nevertheless used a different
        // backend (HDHAM_KERNEL / --kernel pin, or a dispatch
        // change) compares apples to oranges kernel-wise; say so
        // loudly, but let the throughput gate decide pass/fail.
        if (baseKernel &&
            baseKernel->asString() != current.kernel) {
            std::fprintf(
                stderr,
                "bench_gate: WARNING: baseline was recorded with "
                "kernel '%s' but this run used '%s' -- throughput "
                "ratios compare different Hamming backends\n",
                baseKernel->asString().c_str(),
                current.kernel.c_str());
        }
    }
    std::printf("%-42s %14s %14s %7s  %s\n", "benchmark",
                "baseline q/s", "current q/s", "ratio", "status");
    for (const auto &[name, want] :
         baseline.at("throughput_qps").members()) {
        // With --skip-micro only the batch suite ran; don't flag
        // the micro_software_am rows as missing.
        const auto it = current.throughput.find(name);
        if (it == current.throughput.end()) {
            if (skipMicro)
                continue;
            std::printf("%-42s %14.3g %14s %7s  MISSING\n",
                        name.c_str(), want.asNumber(), "-", "-");
            ++failures;
            continue;
        }
        const double ratio = want.asNumber() > 0.0
                                 ? it->second / want.asNumber()
                                 : 1.0;
        const bool ok = ratio >= 1.0 - tolerance;
        std::printf("%-42s %14.3g %14.3g %7.3f  %s\n", name.c_str(),
                    want.asNumber(), it->second, ratio,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            ++failures;
    }
    for (const auto &[name, summary] : current.latencyUs) {
        std::printf("%-42s p50 %.1f us, p95 %.1f us "
                    "(informational)\n",
                    name.c_str(), summary.p50Us, summary.p95Us);
    }
    if (!current.perf.empty()) {
        std::string row;
        for (const char *key :
             {"ipc", "llc_miss_per_kinst", "cycles", "instructions",
              "page_faults"}) {
            const auto it = current.perf.find(key);
            if (it != current.perf.end()) {
                char cell[64];
                std::snprintf(cell, sizeof cell, " %s=%.3g", key,
                              it->second);
                row += cell;
            }
        }
        if (!row.empty())
            std::printf("perf (informational):%s\n", row.c_str());
    }
    if (!current.serve.empty()) {
        // Regroup "<benchmark>.<counter>" into one row per
        // benchmark run.
        std::map<std::string, std::string> rows;
        for (const auto &[key, value] : current.serve) {
            const std::size_t dot = key.rfind('.');
            if (dot == std::string::npos)
                continue;
            char cell[80];
            std::snprintf(cell, sizeof cell, " %s=%.3g",
                          key.substr(dot + 1).c_str(), value);
            rows[key.substr(0, dot)] += cell;
        }
        for (const auto &[name, row] : rows)
            std::printf("serve (informational): %s%s\n",
                        name.c_str(), row.c_str());
    }
    return failures;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baselinePath = "BENCH_query_path.json";
    std::string batchBench;
    std::string microBench;
    std::string filter;
    double tolerance = 0.25;
    bool update = false;
    bool skipMicro = false;
    bool strictHost = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool hasValue = i + 1 < argc;
        if (arg == "--baseline" && hasValue) {
            baselinePath = argv[++i];
        } else if (arg == "--tolerance" && hasValue) {
            tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--batch-bench" && hasValue) {
            batchBench = argv[++i];
        } else if (arg == "--micro-bench" && hasValue) {
            microBench = argv[++i];
        } else if (arg == "--filter" && hasValue) {
            filter = argv[++i];
        } else if (arg == "--update-baseline") {
            update = true;
        } else if (arg == "--skip-micro") {
            skipMicro = true;
        } else if (arg == "--strict-host") {
            strictHost = true;
        } else {
            return usage();
        }
    }

    const std::string benchDir = dirOf(argv[0]) + "../bench/";
    if (batchBench.empty())
        batchBench = benchDir + "micro_batch_throughput";
    if (microBench.empty())
        microBench = benchDir + "micro_software_am";

    try {
        const SuiteResult current =
            runSuite(batchBench, microBench, filter, skipMicro);

        // Sanity-gate the pruned path itself: if the cascade
        // benchmark ran but pruned nothing, the bound-pruned scan
        // has been silently disabled -- that must fail loudly, not
        // show up as a merely-tolerated throughput drop.
        bool cascadeRan = false;
        for (const auto &[name, qps] : current.throughput)
            if (name.rfind("BM_CascadeScan", 0) == 0)
                cascadeRan = true;
        if (cascadeRan && current.cascadeRowsPruned == 0.0) {
            throw std::runtime_error(
                "bench_gate: BM_CascadeScan ran but "
                "am_cascade.rows_pruned == 0 -- the bound-pruned "
                "scan path is not pruning");
        }

        if (update) {
            std::ofstream out(baselinePath);
            if (!out) {
                throw std::runtime_error(
                    "bench_gate: cannot write " + baselinePath);
            }
            writeBaseline(out, current, tolerance);
            std::printf("baseline written to %s\n",
                        baselinePath.c_str());
            return 0;
        }

        const Value baseline = parse(readFile(baselinePath));
        const Value *schema = baseline.find("schema");
        if (!schema || schema->asString() != "hdham.bench.v1") {
            throw std::runtime_error(
                "bench_gate: " + baselinePath +
                " is not an hdham.bench.v1 document");
        }
        bool hostMismatch = false;
        std::string hostDiff;
        if (const Value *host = baseline.find("host")) {
            const Value *threads = host->find("threads");
            const Value *cpu = host->find("cpu");
            const Value *compiled = host->find("kernels_compiled");
            const double wantThreads =
                threads ? threads->asNumber() : 0.0;
            const std::string wantCpu =
                cpu ? cpu->asString() : std::string();
            // Baselines recorded before the backend list landed in
            // the fingerprint have no kernels_compiled field; treat
            // the current list as matching so old baselines only
            // mismatch on a real thread/CPU change.
            const std::string wantCompiled =
                compiled ? compiled->asString()
                         : hostCompiledKernels();
            if (wantThreads !=
                    static_cast<double>(hostThreads()) ||
                wantCpu != hostCpuFlags() ||
                wantCompiled != hostCompiledKernels()) {
                hostMismatch = true;
                hostDiff =
                    "baseline host (threads=" +
                    std::to_string(
                        static_cast<long long>(wantThreads)) +
                    ", cpu=" + wantCpu + ", kernels_compiled=" +
                    wantCompiled +
                    ") does not match this machine (threads=" +
                    std::to_string(hostThreads()) +
                    ", cpu=" + hostCpuFlags() +
                    ", kernels_compiled=" + hostCompiledKernels() +
                    ")";
            }
        }
        if (hostMismatch && strictHost) {
            // The pre---strict-host behavior: refuse to compare.
            throw std::runtime_error(
                "bench_gate: " + hostDiff +
                " -- cross-machine throughput comparisons produce "
                "phantom regressions; rerun 'bench_gate "
                "--update-baseline' on this machine");
        }
        const int failures =
            gate(baseline, current, tolerance, skipMicro);
        if (hostMismatch) {
            // Cross-machine ratios are noise, not regressions:
            // report, label, and pass.
            std::fprintf(stderr,
                         "bench_gate: WARNING: %s -- comparison is "
                         "informational only, not gating (pass "
                         "--strict-host to fail instead, or rerun "
                         "'bench_gate --update-baseline' on this "
                         "machine)\n",
                         hostDiff.c_str());
            return 0;
        }
        if (failures > 0) {
            std::fprintf(stderr,
                         "bench_gate: %d benchmark(s) below %.0f%% "
                         "of baseline\n",
                         failures, 100.0 * (1.0 - tolerance));
            return 1;
        }
        std::printf("bench_gate: all benchmarks within %.0f%% of "
                    "baseline\n",
                    100.0 * tolerance);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
